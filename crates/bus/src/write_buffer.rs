//! The CPU-side write buffer.
//!
//! The paper's footnote 6 warns that "some hardware devices (e.g. write
//! buffers) may attempt to collapse successive read/write operations to
//! the same address. In these cases appropriate memory barrier commands
//! should be used to ensure that all issued instructions will reach the
//! DMA engine." §3.4 adds that the Repeated-Passing measurement used a
//! memory barrier "to make sure that repeated accesses to the same address
//! were not collapsed in (or serviced by) the write buffer".
//!
//! This module models both hazards precisely:
//!
//! * **collapsing** — a store whose address matches a pending store merges
//!   into it; the bus (and the DMA engine's sequence FSM) sees *one*
//!   transaction where the program issued two;
//! * **load servicing** (store forwarding) — a load whose address matches
//!   a pending store is satisfied from the buffer and never reaches the
//!   bus at all.
//!
//! Programs flush the buffer with a memory-barrier instruction, which the
//! CPU translates into [`WriteBuffer::drain`].

use crate::BusTxn;
use std::collections::VecDeque;
use udma_mem::PhysAddr;

/// A store waiting in the write buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingStore {
    /// Target physical address.
    pub paddr: PhysAddr,
    /// Data to be written.
    pub data: u64,
    /// Issuing process id (trace metadata).
    pub tag: u32,
}

impl PendingStore {
    /// Converts the pending store into the bus transaction that retires it.
    pub fn into_txn(self) -> BusTxn {
        BusTxn::write(self.paddr, self.data, self.tag)
    }
}

/// Behavioural knobs of the write buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteBufferPolicy {
    /// Merge a new store into a pending store with the same address.
    pub collapse_stores: bool,
    /// Satisfy loads from a pending store with the same address
    /// (store-to-load forwarding).
    pub service_loads: bool,
    /// Maximum pending stores; pushing into a full buffer retires the
    /// oldest entry to the bus.
    pub capacity: usize,
}

impl Default for WriteBufferPolicy {
    /// Alpha-21064-like: 4 entries, merging and forwarding enabled.
    fn default() -> Self {
        WriteBufferPolicy { collapse_stores: true, service_loads: true, capacity: 4 }
    }
}

impl WriteBufferPolicy {
    /// A pass-through policy: nothing is buffered (every store goes
    /// straight to the bus). Useful to isolate protocol behaviour from
    /// buffer behaviour in tests.
    pub fn disabled() -> Self {
        WriteBufferPolicy { collapse_stores: false, service_loads: false, capacity: 0 }
    }
}

/// FIFO write buffer with optional collapsing and load servicing.
///
/// ```
/// use udma_bus::{PendingStore, WriteBuffer, WriteBufferPolicy};
/// use udma_mem::PhysAddr;
///
/// let mut wb = WriteBuffer::new(WriteBufferPolicy::default());
/// wb.push(PendingStore { paddr: PhysAddr::new(0x100), data: 1, tag: 0 });
/// wb.push(PendingStore { paddr: PhysAddr::new(0x100), data: 2, tag: 0 });
/// // Same address: collapsed — the bus will see ONE store (footnote 6).
/// assert_eq!(wb.drain().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct WriteBuffer {
    queue: VecDeque<PendingStore>,
    policy: WriteBufferPolicy,
    collapsed: u64,
    serviced: u64,
}

impl WriteBuffer {
    /// Creates a buffer with the given policy.
    pub fn new(policy: WriteBufferPolicy) -> Self {
        WriteBuffer { queue: VecDeque::new(), policy, collapsed: 0, serviced: 0 }
    }

    /// The active policy.
    pub fn policy(&self) -> WriteBufferPolicy {
        self.policy
    }

    /// Buffers a store. Returns any stores that must retire to the bus
    /// *now* (the overflow victim, or the store itself when the buffer is
    /// disabled), oldest first.
    pub fn push(&mut self, store: PendingStore) -> Vec<PendingStore> {
        if self.policy.capacity == 0 {
            return vec![store];
        }
        if self.policy.collapse_stores {
            if let Some(p) = self.queue.iter_mut().rev().find(|p| p.paddr == store.paddr) {
                p.data = store.data;
                p.tag = store.tag;
                self.collapsed += 1;
                return Vec::new();
            }
        }
        let mut retired = Vec::new();
        if self.queue.len() == self.policy.capacity {
            retired.push(self.queue.pop_front().expect("buffer full"));
        }
        self.queue.push_back(store);
        retired
    }

    /// Attempts to satisfy a load from the buffer. Returns the forwarded
    /// data if a pending store matches and forwarding is enabled — in that
    /// case the load never reaches the bus (the §3.4 hazard).
    pub fn service_load(&mut self, paddr: PhysAddr) -> Option<u64> {
        if !self.policy.service_loads {
            return None;
        }
        let hit = self.queue.iter().rev().find(|p| p.paddr == paddr).map(|p| p.data);
        if hit.is_some() {
            self.serviced += 1;
        }
        hit
    }

    /// Empties the buffer (a memory-barrier instruction), returning the
    /// pending stores oldest first so the caller can retire them in order.
    pub fn drain(&mut self) -> Vec<PendingStore> {
        self.queue.drain(..).collect()
    }

    /// Number of pending stores.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no stores are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// How many stores were merged away (never reached the bus).
    pub fn collapsed_count(&self) -> u64 {
        self.collapsed
    }

    /// How many loads were satisfied without a bus transaction.
    pub fn serviced_count(&self) -> u64 {
        self.serviced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(pa: u64, data: u64) -> PendingStore {
        PendingStore { paddr: PhysAddr::new(pa), data, tag: 1 }
    }

    #[test]
    fn same_address_stores_collapse() {
        let mut wb = WriteBuffer::new(WriteBufferPolicy::default());
        assert!(wb.push(st(0x100, 1)).is_empty());
        assert!(wb.push(st(0x100, 2)).is_empty());
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.collapsed_count(), 1);
        let drained = wb.drain();
        assert_eq!(drained, vec![st(0x100, 2)]);
    }

    #[test]
    fn collapse_disabled_keeps_both() {
        let policy = WriteBufferPolicy { collapse_stores: false, ..Default::default() };
        let mut wb = WriteBuffer::new(policy);
        wb.push(st(0x100, 1));
        wb.push(st(0x100, 2));
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.collapsed_count(), 0);
    }

    #[test]
    fn loads_serviced_from_buffer() {
        let mut wb = WriteBuffer::new(WriteBufferPolicy::default());
        wb.push(st(0x200, 42));
        assert_eq!(wb.service_load(PhysAddr::new(0x200)), Some(42));
        assert_eq!(wb.service_load(PhysAddr::new(0x300)), None);
        assert_eq!(wb.serviced_count(), 1);
        // Servicing does not consume the pending store.
        assert_eq!(wb.len(), 1);
    }

    #[test]
    fn forwarding_returns_newest_value() {
        let policy = WriteBufferPolicy { collapse_stores: false, ..Default::default() };
        let mut wb = WriteBuffer::new(policy);
        wb.push(st(0x200, 1));
        wb.push(st(0x200, 2));
        assert_eq!(wb.service_load(PhysAddr::new(0x200)), Some(2));
    }

    #[test]
    fn overflow_retires_oldest() {
        let policy = WriteBufferPolicy { capacity: 2, ..Default::default() };
        let mut wb = WriteBuffer::new(policy);
        assert!(wb.push(st(8, 1)).is_empty());
        assert!(wb.push(st(2 * 8, 2)).is_empty());
        let retired = wb.push(st(3 * 8, 3));
        assert_eq!(retired, vec![st(8, 1)]);
        assert_eq!(wb.len(), 2);
    }

    #[test]
    fn drain_is_fifo() {
        let mut wb = WriteBuffer::new(WriteBufferPolicy::default());
        wb.push(st(8, 1));
        wb.push(st(16, 2));
        wb.push(st(24, 3));
        let order: Vec<u64> = wb.drain().iter().map(|p| p.paddr.as_u64()).collect();
        assert_eq!(order, vec![8, 16, 24]);
        assert!(wb.is_empty());
    }

    #[test]
    fn disabled_policy_passes_through() {
        let mut wb = WriteBuffer::new(WriteBufferPolicy::disabled());
        let retired = wb.push(st(8, 1));
        assert_eq!(retired, vec![st(8, 1)]);
        assert!(wb.is_empty());
        assert_eq!(wb.service_load(PhysAddr::new(8)), None);
    }

    #[test]
    fn into_txn_preserves_fields() {
        let txn = st(0x40, 9).into_txn();
        assert_eq!(txn.paddr, PhysAddr::new(0x40));
        assert_eq!(txn.data, 9);
        assert_eq!(txn.op, crate::BusOp::Write);
    }
}
