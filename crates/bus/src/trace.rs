//! Bus transaction tracing.

use crate::{BusOp, SimTime};
use std::fmt;
use udma_mem::PhysAddr;

/// One completed bus transaction, as recorded by the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Time the transaction started.
    pub time: SimTime,
    /// Direction.
    pub op: BusOp,
    /// Physical address.
    pub paddr: PhysAddr,
    /// Data written, or data returned for a read.
    pub data: u64,
    /// Issuing process id (trace metadata only).
    pub tag: u32,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] p{} {} {} = {:#x}", self.time, self.tag, self.op, self.paddr, self.data)
    }
}

/// A bounded in-order log of bus transactions.
///
/// Tests use it to assert exactly what the DMA engine saw — e.g. that a
/// collapsed pair of stores produced a single transaction, or that the
/// five accesses of the repeated-passing protocol arrived in order.
#[derive(Clone, Debug)]
pub struct BusTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Default for BusTrace {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl BusTrace {
    /// Creates a disabled trace that will keep at most `capacity` events
    /// once enabled.
    pub fn new(capacity: usize) -> Self {
        BusTrace { events: Vec::new(), capacity, enabled: false, dropped: 0 }
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (events already captured are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled; counts it as dropped when full.
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The captured events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears captured events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Events matching a predicate, for test assertions.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| pred(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, op: BusOp, pa: u64) -> TraceEvent {
        TraceEvent { time: SimTime::from_ns(t), op, paddr: PhysAddr::new(pa), data: 0, tag: 1 }
    }

    #[test]
    fn disabled_by_default() {
        let mut tr = BusTrace::default();
        tr.record(ev(0, BusOp::Read, 0));
        assert!(tr.events().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn records_in_order_when_enabled() {
        let mut tr = BusTrace::new(8);
        tr.enable();
        tr.record(ev(1, BusOp::Write, 0x10));
        tr.record(ev(2, BusOp::Read, 0x20));
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].paddr, PhysAddr::new(0x10));
        assert_eq!(tr.events()[1].op, BusOp::Read);
    }

    #[test]
    fn drops_when_full() {
        let mut tr = BusTrace::new(1);
        tr.enable();
        tr.record(ev(1, BusOp::Read, 1));
        tr.record(ev(2, BusOp::Read, 2));
        assert_eq!(tr.events().len(), 1);
        assert_eq!(tr.dropped(), 1);
        tr.clear();
        assert_eq!(tr.dropped(), 0);
        assert!(tr.events().is_empty());
        assert!(tr.is_enabled());
    }

    #[test]
    fn filter_selects() {
        let mut tr = BusTrace::new(8);
        tr.enable();
        tr.record(ev(1, BusOp::Write, 1));
        tr.record(ev(2, BusOp::Read, 2));
        tr.record(ev(3, BusOp::Write, 3));
        let writes: Vec<_> = tr.filter(|e| e.op == BusOp::Write).collect();
        assert_eq!(writes.len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let e = ev(1, BusOp::Write, 0x40);
        let s = e.to_string();
        assert!(s.contains('W'), "{s}");
        assert!(s.contains("0x40"), "{s}");
    }
}
