//! Bus timing presets.

use crate::{BusOp, Clock, SimTime};

/// Cycle-level timing of a clocked I/O bus.
///
/// The paper's prototype board sits on a 12.5 MHz TurboChannel; §3.4 notes
/// that "recent buses, like the PCI bus run at frequencies as high as
/// 66 MHz", which experiment E7 sweeps over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusTiming {
    clock: Clock,
    /// Bus cycles a single-word write transaction occupies.
    write_cycles: u64,
    /// Bus cycles a single-word read transaction occupies (reads need the
    /// round trip: address out, device turnaround, data back).
    read_cycles: u64,
    name: &'static str,
}

impl BusTiming {
    /// Creates a custom timing.
    pub fn new(name: &'static str, hz: u64, write_cycles: u64, read_cycles: u64) -> Self {
        BusTiming { clock: Clock::new(hz), write_cycles, read_cycles, name }
    }

    /// The 12.5 MHz TurboChannel of the paper's DEC Alpha 3000/300
    /// prototype. Calibrated so that the two-access Extended Shadow
    /// initiation costs ≈1.1 µs and the four/five-access methods land at
    /// 2.3/2.6 µs, as in Table 1.
    pub fn turbochannel() -> Self {
        BusTiming::new("TurboChannel 12.5MHz", 12_500_000, 6, 6)
    }

    /// 33 MHz PCI.
    pub fn pci33() -> Self {
        BusTiming::new("PCI 33MHz", 33_000_000, 4, 6)
    }

    /// 66 MHz PCI.
    pub fn pci66() -> Self {
        BusTiming::new("PCI 66MHz", 66_000_000, 4, 6)
    }

    /// A custom bus at `hz` with the TurboChannel transaction shape; used
    /// by the bus-frequency sweep (E7).
    pub fn scaled(hz: u64) -> Self {
        BusTiming::new("custom", hz, 6, 6)
    }

    /// Human-readable name of the preset.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bus clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Wall time one transaction of kind `op` occupies the bus.
    pub fn time_for(&self, op: BusOp) -> SimTime {
        match op {
            BusOp::Read => self.clock.cycles(self.read_cycles),
            BusOp::Write => self.clock.cycles(self.write_cycles),
        }
    }
}

impl Default for BusTiming {
    fn default() -> Self {
        BusTiming::turbochannel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turbochannel_transaction_times() {
        let t = BusTiming::turbochannel();
        assert_eq!(t.time_for(BusOp::Write).as_ns(), 480.0);
        assert_eq!(t.time_for(BusOp::Read).as_ns(), 480.0);
    }

    #[test]
    fn faster_bus_is_faster() {
        let tc = BusTiming::turbochannel();
        let pci = BusTiming::pci66();
        assert!(pci.time_for(BusOp::Write) < tc.time_for(BusOp::Write));
        assert!(pci.time_for(BusOp::Read) < tc.time_for(BusOp::Read));
    }

    #[test]
    fn names() {
        assert!(BusTiming::turbochannel().name().contains("TurboChannel"));
        assert!(BusTiming::pci33().name().contains("33"));
        assert_eq!(BusTiming::default(), BusTiming::turbochannel());
    }

    #[test]
    fn scaled_uses_requested_frequency() {
        let t = BusTiming::scaled(25_000_000);
        assert_eq!(t.clock().hz(), 25_000_000);
        // Twice the TurboChannel clock → half the transaction time.
        assert_eq!(t.time_for(BusOp::Write).as_ns(), 240.0);
    }
}
