//! The bus: address decoding, routing, timing and statistics.

use crate::{
    BusDevice, BusOp, BusTiming, BusTrace, BusTxn, RamDevice, SharedMemory, SimTime, TraceEvent,
};
use udma_mem::{MemFault, PhysLayout, Region};

/// Counters kept by the bus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Uncached reads routed to the NIC (register or shadow window).
    pub device_reads: u64,
    /// Uncached writes routed to the NIC.
    pub device_writes: u64,
    /// Reads served by RAM.
    pub ram_reads: u64,
    /// Writes served by RAM.
    pub ram_writes: u64,
    /// Total time the I/O bus was occupied by device transactions.
    pub device_busy: SimTime,
}

impl BusStats {
    /// Total transactions routed to the NIC.
    pub fn device_total(&self) -> u64 {
        self.device_reads + self.device_writes
    }
}

/// The system interconnect: routes physical accesses to RAM or the NIC,
/// charges bus time, and records a trace.
///
/// Only NIC accesses (register window and shadow window) cross the clocked
/// I/O bus and pay [`BusTiming`] costs; RAM accesses pay a flat DRAM
/// latency. This matches the machine the paper measures: the expensive
/// thing about every DMA-initiation protocol is its *uncached
/// TurboChannel transactions*.
pub struct Bus {
    layout: PhysLayout,
    ram: RamDevice,
    nic: Option<Box<dyn BusDevice>>,
    timing: BusTiming,
    ram_latency: SimTime,
    trace: BusTrace,
    stats: BusStats,
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus")
            .field("layout", &self.layout)
            .field("timing", &self.timing)
            .field("nic_attached", &self.nic.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Bus {
    /// Creates a bus over `layout`, backed by shared RAM, with the given
    /// I/O-bus timing.
    pub fn new(layout: PhysLayout, mem: SharedMemory, timing: BusTiming) -> Self {
        layout.validate();
        Bus {
            layout,
            ram: RamDevice::new(mem),
            nic: None,
            timing,
            ram_latency: SimTime::from_ns(180),
            trace: BusTrace::default(),
            stats: BusStats::default(),
        }
    }

    /// Attaches the NIC/DMA engine. Replaces any previous device.
    pub fn attach_nic(&mut self, nic: Box<dyn BusDevice>) {
        self.nic = Some(nic);
    }

    /// The physical layout the bus decodes with.
    pub fn layout(&self) -> &PhysLayout {
        &self.layout
    }

    /// The I/O bus timing in force.
    pub fn timing(&self) -> BusTiming {
        self.timing
    }

    /// Latency of a DRAM access (what a cache miss costs the CPU).
    pub fn ram_latency(&self) -> SimTime {
        self.ram_latency
    }

    /// Shared handle to physical memory (for DMA movers and test setup).
    pub fn memory(&self) -> SharedMemory {
        self.ram.memory()
    }

    /// Mutable access to the attached NIC, for configuration and
    /// inspection by the machine owner (not by simulated software).
    pub fn nic_mut(&mut self) -> Option<&mut (dyn BusDevice + 'static)> {
        self.nic.as_deref_mut()
    }

    /// The transaction trace.
    pub fn trace(&self) -> &BusTrace {
        &self.trace
    }

    /// Mutable access to the trace (enable/disable/clear).
    pub fn trace_mut(&mut self) -> &mut BusTrace {
        &mut self.trace
    }

    /// Counters so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Resets counters and trace contents.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
        self.trace.clear();
    }

    /// Accounting-only entry for coherent agents whose data path bypasses
    /// the bus (the line lives in a cache, not in RAM): bumps the RAM
    /// counters exactly as [`access`](Self::access) would, so flat and
    /// coherent runs of the same program report identical traffic.
    pub fn note_ram_access(&mut self, op: BusOp) {
        match op {
            BusOp::Read => self.stats.ram_reads += 1,
            BusOp::Write => self.stats.ram_writes += 1,
        }
    }

    /// Performs one transaction at simulation time `now`.
    ///
    /// Returns the data (for reads; zero for writes) and the time the
    /// access occupied.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] for unmapped physical addresses or if a NIC
    /// window is addressed with no NIC attached; device faults propagate.
    pub fn access(&mut self, txn: BusTxn, now: SimTime) -> Result<(u64, SimTime), MemFault> {
        let region = self.layout.region_of(txn.paddr);
        let (data, cost) = match region {
            Region::Ram { .. } => {
                let data = match txn.op {
                    BusOp::Read => {
                        self.stats.ram_reads += 1;
                        self.ram.read(txn.paddr, txn.tag, now)?
                    }
                    BusOp::Write => {
                        self.stats.ram_writes += 1;
                        self.ram.write(txn.paddr, txn.data, txn.tag, now)?;
                        0
                    }
                };
                (data, self.ram_latency)
            }
            Region::NicRegs { .. } | Region::Shadow => {
                let nic = self.nic.as_deref_mut().ok_or(MemFault::BusError { pa: txn.paddr })?;
                let data = match txn.op {
                    BusOp::Read => {
                        self.stats.device_reads += 1;
                        nic.read(txn.paddr, txn.tag, now)?
                    }
                    BusOp::Write => {
                        self.stats.device_writes += 1;
                        nic.write(txn.paddr, txn.data, txn.tag, now)?;
                        0
                    }
                };
                let cost = self.timing.time_for(txn.op) + nic.extra_latency();
                self.stats.device_busy += cost;
                (data, cost)
            }
            Region::Unmapped => return Err(MemFault::BusError { pa: txn.paddr }),
        };
        self.trace.record(TraceEvent {
            time: now,
            op: txn.op,
            paddr: txn.paddr,
            data: if txn.op == BusOp::Write { txn.data } else { data },
            tag: txn.tag,
        });
        Ok((data, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysAddr, PhysMemory};

    fn bus() -> Bus {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(layout.ram_size)));
        Bus::new(layout, mem, BusTiming::turbochannel())
    }

    /// A scratch NIC that remembers the last write and answers reads with
    /// its complement.
    struct EchoNic {
        last: u64,
        latency: SimTime,
    }

    impl BusDevice for EchoNic {
        fn read(&mut self, _pa: PhysAddr, _tag: u32, _now: SimTime) -> Result<u64, MemFault> {
            Ok(!self.last)
        }
        fn write(
            &mut self,
            _pa: PhysAddr,
            data: u64,
            _tag: u32,
            _now: SimTime,
        ) -> Result<(), MemFault> {
            self.last = data;
            Ok(())
        }
        fn extra_latency(&mut self) -> SimTime {
            self.latency
        }
    }

    #[test]
    fn ram_round_trip_and_stats() {
        let mut b = bus();
        let pa = PhysAddr::new(0x100);
        b.access(BusTxn::write(pa, 7, 1), SimTime::ZERO).unwrap();
        let (v, _) = b.access(BusTxn::read(pa, 1), SimTime::ZERO).unwrap();
        assert_eq!(v, 7);
        assert_eq!(b.stats().ram_reads, 1);
        assert_eq!(b.stats().ram_writes, 1);
        assert_eq!(b.stats().device_total(), 0);
    }

    #[test]
    fn nic_window_without_nic_is_bus_error() {
        let mut b = bus();
        let pa = b.layout().nic_base;
        assert!(matches!(
            b.access(BusTxn::read(pa, 0), SimTime::ZERO),
            Err(MemFault::BusError { .. })
        ));
    }

    #[test]
    fn nic_routing_and_timing() {
        let mut b = bus();
        b.attach_nic(Box::new(EchoNic { last: 0, latency: SimTime::from_ns(20) }));
        let pa = b.layout().nic_base;
        let (_, w) = b.access(BusTxn::write(pa, 0xAB, 2), SimTime::ZERO).unwrap();
        assert_eq!(w, SimTime::from_ns(500)); // 480 bus + 20 device
        let (v, r) = b.access(BusTxn::read(pa, 2), SimTime::ZERO).unwrap();
        assert_eq!(v, !0xABu64);
        assert_eq!(r, SimTime::from_ns(500));
        assert_eq!(b.stats().device_reads, 1);
        assert_eq!(b.stats().device_writes, 1);
        assert_eq!(b.stats().device_busy, SimTime::from_ns(1000));
    }

    #[test]
    fn shadow_window_routes_to_nic() {
        let mut b = bus();
        b.attach_nic(Box::new(EchoNic { last: 0, latency: SimTime::ZERO }));
        let s = b.layout().shadow.shadow_paddr(PhysAddr::new(0x2000)).unwrap();
        b.access(BusTxn::write(s, 5, 3), SimTime::ZERO).unwrap();
        assert_eq!(b.stats().device_writes, 1);
    }

    #[test]
    fn unmapped_is_bus_error() {
        let mut b = bus();
        let hole = PhysAddr::new(1 << 30);
        assert!(matches!(
            b.access(BusTxn::read(hole, 0), SimTime::ZERO),
            Err(MemFault::BusError { .. })
        ));
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut b = bus();
        b.trace_mut().enable();
        let pa = PhysAddr::new(0x80);
        b.access(BusTxn::write(pa, 1, 7), SimTime::from_ns(5)).unwrap();
        b.access(BusTxn::read(pa, 7), SimTime::from_ns(9)).unwrap();
        let evs = b.trace().events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].op, BusOp::Write);
        assert_eq!(evs[0].data, 1);
        assert_eq!(evs[1].op, BusOp::Read);
        assert_eq!(evs[1].data, 1); // read returns the stored value
        assert_eq!(evs[1].tag, 7);
    }

    #[test]
    fn reset_stats_clears_everything() {
        let mut b = bus();
        b.trace_mut().enable();
        b.access(BusTxn::write(PhysAddr::new(0x80), 1, 0), SimTime::ZERO).unwrap();
        b.reset_stats();
        assert_eq!(b.stats(), BusStats::default());
        assert!(b.trace().events().is_empty());
    }
}
