//! Property tests for the write buffer: whatever the policy, memory
//! semantics are preserved.

use udma_testkit::prop::{any, vec, Strategy};
use udma_testkit::{prop_assert, prop_assert_eq, props};

use udma_bus::{PendingStore, WriteBuffer, WriteBufferPolicy};
use udma_mem::PhysAddr;

#[derive(Clone, Copy, Debug)]
struct Op {
    addr: u64,
    data: u64,
    is_store: bool,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    vec(
        (0u64..8, any::<u64>(), any::<bool>()).prop_map(|(a, data, is_store)| Op {
            addr: a * 8,
            data,
            is_store,
        }),
        0..64,
    )
}

fn policies() -> impl Strategy<Value = WriteBufferPolicy> {
    (any::<bool>(), any::<bool>(), 0usize..8).prop_map(|(collapse, service, capacity)| {
        WriteBufferPolicy { collapse_stores: collapse, service_loads: service, capacity }
    })
}

/// A reference "memory": replay stores in program order.
fn reference_memory(ops: &[Op]) -> std::collections::HashMap<u64, u64> {
    let mut mem = std::collections::HashMap::new();
    for op in ops {
        if op.is_store {
            mem.insert(op.addr, op.data);
        }
    }
    mem
}

props! {
    /// Single-processor consistency: after draining, the combination of
    /// retired stores (in retirement order) equals the reference memory,
    /// regardless of policy. Collapsing may *remove* intermediate values
    /// but never reorders same-address stores or loses the final value.
    fn drain_preserves_final_memory_state(ops in ops(), policy in policies()) {
        let mut wb = WriteBuffer::new(policy);
        let mut retired: Vec<PendingStore> = Vec::new();
        for op in &ops {
            if op.is_store {
                retired.extend(wb.push(PendingStore {
                    paddr: PhysAddr::new(op.addr),
                    data: op.data,
                    tag: 0,
                }));
            } else {
                // Loads may be serviced; they must then return the value
                // a serial execution would see (checked below).
                let _ = wb.service_load(PhysAddr::new(op.addr));
            }
        }
        retired.extend(wb.drain());

        let mut replayed = std::collections::HashMap::new();
        for st in &retired {
            replayed.insert(st.paddr.as_u64(), st.data);
        }
        prop_assert_eq!(replayed, reference_memory(&ops));
        prop_assert!(wb.is_empty());
    }

    /// Store-to-load forwarding always returns the program-order value of
    /// the most recent store to that address, when it forwards at all.
    fn forwarding_returns_program_order_value(ops in ops()) {
        let policy = WriteBufferPolicy { capacity: 64, ..WriteBufferPolicy::default() };
        let mut wb = WriteBuffer::new(policy);
        let mut last_store: std::collections::HashMap<u64, u64> = Default::default();
        for op in &ops {
            if op.is_store {
                let retired = wb.push(PendingStore {
                    paddr: PhysAddr::new(op.addr),
                    data: op.data,
                    tag: 0,
                });
                prop_assert!(retired.is_empty(), "capacity 64 never overflows here");
                last_store.insert(op.addr, op.data);
            } else if let Some(v) = wb.service_load(PhysAddr::new(op.addr)) {
                prop_assert_eq!(Some(&v), last_store.get(&op.addr));
            }
        }
    }

    /// FIFO order among distinct addresses survives any collapse pattern.
    fn distinct_addresses_retire_in_issue_order(
        addrs in vec(0u64..32, 1..24),
    ) {
        let mut wb = WriteBuffer::new(WriteBufferPolicy {
            capacity: 64,
            ..WriteBufferPolicy::default()
        });
        for (i, &a) in addrs.iter().enumerate() {
            wb.push(PendingStore { paddr: PhysAddr::new(a * 8), data: i as u64, tag: 0 });
        }
        let drained = wb.drain();
        // First-occurrence order of addresses must be preserved.
        let mut seen = Vec::new();
        for &a in &addrs {
            if !seen.contains(&(a * 8)) {
                seen.push(a * 8);
            }
        }
        let drained_addrs: Vec<u64> = drained.iter().map(|s| s.paddr.as_u64()).collect();
        prop_assert_eq!(drained_addrs, seen);
    }
}
