//! Seeded node-failure injection: crash plans and their accounting.
//!
//! A [`CrashPlan`] scripts one failure of one node — a full
//! crash-and-reboot that loses all volatile NI/OS state, an NI-engine
//! hang that drops frames but keeps state, or an OS fault-service stall
//! that defers NACK servicing — at a fixed simulated time. Plans are
//! plain data so the same schedule replays identically in the
//! single-machine `Cluster` world and in the sharded `ClusterSim`, and
//! so a property harness can shrink over them.
//!
//! The state-partitioning question MProtect raises — *exactly which*
//! NI/OS state survives a reboot — is answered here, explicitly:
//!
//! | state                              | survives a [`CrashKind::Crash`]? |
//! |------------------------------------|----------------------------------|
//! | physical memory contents           | no (zeroed)                      |
//! | receive-side IOMMU + IOTLB         | no (rebuilt from grant records)  |
//! | exposed/pinned grants (OS ledger)  | re-created from persistent records |
//! | in-flight receive windows/announces| no (fenced by incarnation)       |
//! | sender-side in-flight transfers    | no (aborted `NodeDown`)          |
//! | incarnation counter                | bumped (monotonic)               |
//! | link emission counter (`seq`)      | yes (link-level serial)          |
//!
//! A [`CrashKind::NiHang`] keeps *everything* and merely drops frames
//! for its duration, so transfers may resume where they paused; a
//! [`CrashKind::FaultStall`] only delays the NACK path.

use udma_bus::SimTime;

/// What kind of node failure a [`CrashPlan`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// Power-fail crash: the node goes silent at `at` and loses all
    /// volatile state. If the plan carries a recovery delay the node
    /// reboots under a **new incarnation epoch**, re-exposes and re-pins
    /// its granted buffers, and announces itself to every peer.
    Crash,
    /// NI-engine hang: every frame to or from the node is dropped for
    /// the duration, but no state is lost and the incarnation does not
    /// change — in-flight transfers may resume where they paused.
    NiHang,
    /// OS fault-service stall: data deposits flow, but receive-side
    /// fault servicing (the NACK path) is deferred until the stall
    /// window ends.
    FaultStall,
}

/// One scripted failure of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// The failing node.
    pub node: u32,
    /// The failure mode.
    pub kind: CrashKind,
    /// When the failure strikes.
    pub at: SimTime,
    /// How long until recovery (reboot / unhang / stall end). `None`
    /// means the node never recovers — peers must converge on `Down`
    /// and fail fast forever after.
    pub recover_after: Option<SimTime>,
}

impl CrashPlan {
    /// A crash at `at` that reboots `reboot_after` later.
    pub fn crash(node: u32, at: SimTime, reboot_after: SimTime) -> Self {
        CrashPlan { node, kind: CrashKind::Crash, at, recover_after: Some(reboot_after) }
    }

    /// A crash at `at` with no reboot, ever.
    pub fn crash_forever(node: u32, at: SimTime) -> Self {
        CrashPlan { node, kind: CrashKind::Crash, at, recover_after: None }
    }

    /// An NI-engine hang of `duration` starting at `at`.
    pub fn hang(node: u32, at: SimTime, duration: SimTime) -> Self {
        CrashPlan { node, kind: CrashKind::NiHang, at, recover_after: Some(duration) }
    }

    /// An OS fault-service stall of `duration` starting at `at`.
    pub fn stall(node: u32, at: SimTime, duration: SimTime) -> Self {
        CrashPlan { node, kind: CrashKind::FaultStall, at, recover_after: Some(duration) }
    }

    /// When the node recovers, if it ever does.
    pub fn recovery_at(&self) -> Option<SimTime> {
        self.recover_after.map(|d| self.at + d)
    }
}

/// Per-node failure accounting, part of the node digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Crashes suffered.
    pub crashes: u64,
    /// Reboots completed (each bumps the incarnation).
    pub reboots: u64,
    /// NI-engine hangs suffered.
    pub hangs: u64,
    /// Fault-service stalls suffered.
    pub stalls: u64,
    /// Envelopes dropped because the node was down or hung.
    pub dropped_down: u64,
    /// Stale-incarnation envelopes fenced and discarded after a reboot
    /// (pre-crash Data/Ack/Nack that must never merge into fresh state).
    pub fenced: u64,
    /// Queued pre-crash faults discarded at crash time (the NACK
    /// backlog died with the node).
    pub fenced_faults: u64,
    /// Grant records replayed (re-exposed) during reboots.
    pub regrants: u64,
    /// Pin records replayed (re-pinned) during reboots.
    pub repins: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_time_is_offset_from_the_crash() {
        let p = CrashPlan::crash(3, SimTime::from_us(100), SimTime::from_us(40));
        assert_eq!(p.recovery_at(), Some(SimTime::from_us(140)));
        assert_eq!(p.kind, CrashKind::Crash);
        let h = CrashPlan::hang(1, SimTime::from_us(5), SimTime::from_us(10));
        assert_eq!(h.recovery_at(), Some(SimTime::from_us(15)));
        assert_eq!(h.kind, CrashKind::NiHang);
        let s = CrashPlan::stall(0, SimTime::ZERO, SimTime::from_us(7));
        assert_eq!(s.recovery_at(), Some(SimTime::from_us(7)));
    }

    #[test]
    fn crash_forever_never_recovers() {
        let p = CrashPlan::crash_forever(2, SimTime::from_us(9));
        assert_eq!(p.recover_after, None);
        assert_eq!(p.recovery_at(), None);
    }
}
