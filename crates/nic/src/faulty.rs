//! A lossy link and the reliability layer that survives it.
//!
//! The paper's protocols assume the Telegraphos link delivers every
//! word. This module drops that assumption: a [`FaultyLink`] wraps the
//! cluster link with a *seeded, deterministic* fault plan — per-frame
//! drop/duplicate/reorder/corrupt probabilities plus scripted burst
//! outages — and a go-back-N delivery protocol ([`deliver`]) carries
//! remote transfers across it anyway: MTU-sized frames with sequence
//! numbers and a CRC-32, cumulative ACKs, NACK on checksum failure,
//! retransmit on timeout with exponential backoff and a bounded retry
//! budget. Every recovery action is charged through [`SimTime`], so a
//! lossless plan costs *exactly* what the bare [`LinkModel`] charges —
//! the reliability layer is free until the link actually misbehaves.

use crate::link::{LinkModel, RetryPolicy};
use udma_bus::SimTime;
use udma_testkit::TestRng;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// frame checksum the receiver verifies before acking anything.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// A scripted outage: every data frame whose global transmission index
/// (counting retransmissions) falls in `[start, start + frames)` is
/// dropped, whatever the probabilistic plan says.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    /// First global data-frame transmission index the outage swallows.
    pub start: u64,
    /// Consecutive transmissions swallowed.
    pub frames: u64,
}

/// Maximum scripted bursts per plan (keeps the plan `Copy`, so it can
/// ride on a `MachineConfig`).
pub const MAX_BURSTS: usize = 4;

/// A deterministic fault plan: seed plus per-frame fault probabilities
/// and scripted burst outages. The same plan always yields the same
/// fault sequence — chaos you can replay from a CI log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed (testkit xoshiro256**).
    pub seed: u64,
    /// Probability a frame (data or ACK) is dropped.
    pub drop: f64,
    /// Probability a data frame arrives twice.
    pub duplicate: f64,
    /// Probability a data frame swaps places with its successor.
    pub reorder: f64,
    /// Probability a data frame arrives with flipped bits (caught by
    /// the CRC; the receiver NACKs instead of acking).
    pub corrupt: f64,
    /// Scripted burst outages (fixed-size so the plan stays `Copy`).
    pub bursts: [Option<Burst>; MAX_BURSTS],
}

impl FaultPlan {
    /// A plan that never faults — the reliability layer's control run.
    pub fn lossless(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            bursts: [None; MAX_BURSTS],
        }
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the duplicate probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the corrupt probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Adds a scripted burst outage.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_BURSTS`] slots are taken.
    pub fn with_burst(mut self, start: u64, frames: u64) -> Self {
        let slot = self
            .bursts
            .iter_mut()
            .find(|s| s.is_none())
            .expect("fault plan already has MAX_BURSTS bursts");
        *slot = Some(Burst { start, frames });
        self
    }

    /// Checks the plan is a valid probability mix.
    ///
    /// # Panics
    ///
    /// Panics if any probability leaves `[0, 1]` or their sum exceeds 1
    /// (the per-frame fates are drawn from one partition of `[0, 1)`).
    pub fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("corrupt", self.corrupt),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} probability {p} outside [0, 1]");
        }
        let sum = self.drop + self.duplicate + self.reorder + self.corrupt;
        assert!(sum <= 1.0, "fault probabilities sum to {sum} > 1");
    }
}

/// What the link did to one data frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFate {
    /// Arrived intact.
    Deliver,
    /// Vanished on the wire.
    Drop,
    /// Arrived twice.
    Duplicate,
    /// Swapped places with the next frame.
    Reorder,
    /// Arrived with flipped bits (CRC catches it).
    Corrupt,
}

/// What the link did to a control message (a NACKed fault
/// notification crossing back to the sender's OS path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlFate {
    /// Arrived once.
    Deliver,
    /// Vanished; the bounded retry on the transfer recovers.
    Drop,
    /// Arrived twice; the fault service must be idempotent.
    Duplicate,
}

/// Counters of everything the chaos link ever did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultyLinkStats {
    /// Data frames pushed onto the wire (incl. retransmissions).
    pub data_frames: u64,
    /// Data frames dropped (probabilistic + burst).
    pub dropped: u64,
    /// Data frames delivered twice.
    pub duplicated: u64,
    /// Data frames swapped with their successor.
    pub reordered: u64,
    /// Data frames delivered with flipped bits.
    pub corrupted: u64,
    /// ACK/NACK frames lost on the return path.
    pub acks_dropped: u64,
    /// Fault notifications (NACK control messages) lost outright.
    pub nacks_dropped: u64,
    /// Fault notifications delivered twice.
    pub nacks_duplicated: u64,
}

/// The seeded chaos wrapper around the cluster link: every message the
/// engine sends through [`crate::DmaMover::start_remote`] consults this
/// for its fate. Deterministic — replaying the same plan against the
/// same traffic yields the same faults.
#[derive(Clone, Debug)]
pub struct FaultyLink {
    plan: FaultPlan,
    rng: TestRng,
    /// Global data-frame transmission counter (burst outages key on it).
    sent: u64,
    stats: FaultyLinkStats,
}

impl FaultyLink {
    /// Wraps a link with `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan's probabilities are invalid
    /// ([`FaultPlan::validate`]).
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        FaultyLink {
            plan,
            rng: TestRng::seed_from_u64(plan.seed),
            sent: 0,
            stats: FaultyLinkStats::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Everything the link has done so far.
    pub fn stats(&self) -> FaultyLinkStats {
        self.stats
    }

    /// Decides the fate of the next data frame (consumes one PRNG draw;
    /// burst outages override the draw but still consume it, so a plan
    /// with and without bursts stays comparable frame for frame).
    pub fn data_fate(&mut self) -> FrameFate {
        let idx = self.sent;
        self.sent += 1;
        self.stats.data_frames += 1;
        let r = self.rng.gen_f64();
        let in_burst = self
            .plan
            .bursts
            .iter()
            .flatten()
            .any(|b| idx >= b.start && idx < b.start.saturating_add(b.frames));
        if in_burst {
            self.stats.dropped += 1;
            return FrameFate::Drop;
        }
        let p = &self.plan;
        if r < p.drop {
            self.stats.dropped += 1;
            FrameFate::Drop
        } else if r < p.drop + p.duplicate {
            self.stats.duplicated += 1;
            FrameFate::Duplicate
        } else if r < p.drop + p.duplicate + p.reorder {
            self.stats.reordered += 1;
            FrameFate::Reorder
        } else if r < p.drop + p.duplicate + p.reorder + p.corrupt {
            self.stats.corrupted += 1;
            FrameFate::Corrupt
        } else {
            FrameFate::Deliver
        }
    }

    /// Whether the next ACK/NACK frame on the return path is lost
    /// (same drop probability as data frames).
    pub fn ack_lost(&mut self) -> bool {
        let lost = self.rng.gen_bool(self.plan.drop);
        if lost {
            self.stats.acks_dropped += 1;
        }
        lost
    }

    /// Decides the fate of a fault-notification control message (the
    /// NACK a remote node sends when its receive-side IOMMU faults).
    pub fn control_fate(&mut self) -> ControlFate {
        let r = self.rng.gen_f64();
        if r < self.plan.drop {
            self.stats.nacks_dropped += 1;
            ControlFate::Drop
        } else if r < self.plan.drop + self.plan.duplicate {
            self.stats.nacks_duplicated += 1;
            ControlFate::Duplicate
        } else {
            ControlFate::Deliver
        }
    }
}

/// Tunables of the reliability layer: framing, the go-back-N window,
/// the retransmit policy, the watchdog deadline and the circuit
/// breaker. One struct so "how robust is the remote path" is configured
/// in one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Frame payload size in bytes.
    pub mtu: u64,
    /// Go-back-N window: unacked frames in flight.
    pub window: u32,
    /// Retransmit-timer expiry when no ACK (and no NACK) is heard.
    pub ack_timeout: SimTime,
    /// Retransmit rounds allowed per stretch of no ACK progress, with
    /// the per-round (doubling) backoff — the link-level twin of the
    /// virtual-address unit's resume policy.
    pub retry: RetryPolicy,
    /// Watchdog: a non-terminal remote transfer whose last byte
    /// progress is older than this is aborted with `DMA_LINK_FAILED`.
    pub watchdog: SimTime,
    /// Consecutive link-failed transfers before the engine
    /// circuit-breaks the remote path (`DMA_LINK_DOWN` on new posts).
    pub breaker_threshold: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            mtu: 1024,
            window: 8,
            // Two ATM-class round trips of headroom.
            ack_timeout: SimTime::from_us(40),
            retry: RetryPolicy::new(6, SimTime::from_us(5)),
            watchdog: SimTime::from_us(20_000),
            breaker_threshold: 3,
        }
    }
}

/// What one reliable delivery did: the in-order prefix that landed, the
/// wire and stall time it cost, and every recovery counter. `elapsed`
/// is the whole story on the sender's clock: serialisation of every
/// byte that crossed the wire (retransmissions included) plus every
/// timeout and backoff stall.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryOutcome {
    /// Bytes of the contiguous in-order prefix the receiver accepted.
    pub delivered: u64,
    /// Total time on the sender's clock (wire + stalls).
    pub elapsed: SimTime,
    /// Bytes that crossed the wire, retransmissions and duplicates
    /// included.
    pub wire_bytes: u64,
    /// Data-frame transmissions (first sends + retransmissions).
    pub frames_sent: u32,
    /// Frames sent again after their first transmission.
    pub retransmits: u32,
    /// Retransmit-timer / NACK-recovery rounds charged.
    pub timeouts: u32,
    /// Time lost to timeouts and backoff alone (subset of `elapsed`).
    pub stall: SimTime,
    /// Frames the receiver discarded for a bad CRC (never acked).
    pub crc_dropped: u32,
    /// Duplicate frames the receiver ignored (already past them).
    pub dup_ignored: u32,
    /// Out-of-order frames a go-back-N receiver discards.
    pub ooo_discarded: u32,
    /// Whether the sender heard the final cumulative ACK. When false
    /// the retry budget ran dry; `delivered` is still an exact in-order
    /// prefix (possibly the whole payload if only the last ACK died).
    pub completed: bool,
}

/// Carries `data` across the chaos link with go-back-N: frames of
/// [`ReliabilityConfig::mtu`] bytes, sequence numbers, CRC-32, a
/// cumulative ACK per window round, NACK-accelerated recovery on CRC
/// failure, retransmit on timeout with exponential backoff, bounded by
/// the retry budget. Returns the outcome and the bytes the receiver
/// accepted — always a contiguous in-order prefix of `data`.
///
/// Timing: the elapsed time is `link.transfer_time(wire_bytes)` plus
/// the accumulated stalls, so a run in which nothing goes wrong costs
/// *exactly* `link.transfer_time(data.len())` — the reliability layer
/// adds zero `SimTime` until the link actually faults.
pub fn deliver(
    link: &LinkModel,
    rel: &ReliabilityConfig,
    faulty: &mut FaultyLink,
    data: &[u8],
) -> (DeliveryOutcome, Vec<u8>) {
    let mtu = rel.mtu.max(1) as usize;
    let nframes = data.len().div_ceil(mtu);
    let window = rel.window.max(1) as usize;
    let mut out = Vec::with_capacity(data.len());
    let mut o = DeliveryOutcome::default();
    let mut sender_base = 0usize; // frames the sender knows are acked
    let mut next_expected = 0usize; // receiver's in-order progress
    let mut sent_once = vec![false; nframes];
    let mut retries = 0u32;

    while sender_base < nframes {
        if retries > rel.retry.max_retries {
            break;
        }
        let end = (sender_base + window).min(nframes);

        // Transmit the window; the chaos link decides each frame's fate.
        // An arrival is (seq, crc_ok): payload bytes are reconstructed
        // from `data` on in-order accept, and a corrupted frame is one
        // whose recomputed CRC cannot match its header.
        let mut arrivals: Vec<(usize, bool)> = Vec::with_capacity(end - sender_base + 1);
        let mut swap_with_next: Option<usize> = None;
        for (seq, sent) in sent_once.iter_mut().enumerate().take(end).skip(sender_base) {
            let lo = seq * mtu;
            let len = (data.len() - lo).min(mtu) as u64;
            o.wire_bytes += len;
            o.frames_sent += 1;
            if *sent {
                o.retransmits += 1;
            } else {
                *sent = true;
            }
            let mut push = |arrivals: &mut Vec<(usize, bool)>, a: (usize, bool)| {
                arrivals.push(a);
                if let Some(i) = swap_with_next.take() {
                    let last = arrivals.len() - 1;
                    arrivals.swap(i, last);
                }
            };
            match faulty.data_fate() {
                FrameFate::Drop => {}
                FrameFate::Deliver => push(&mut arrivals, (seq, true)),
                FrameFate::Corrupt => push(&mut arrivals, (seq, false)),
                FrameFate::Duplicate => {
                    o.wire_bytes += len;
                    push(&mut arrivals, (seq, true));
                    push(&mut arrivals, (seq, true));
                }
                FrameFate::Reorder => {
                    push(&mut arrivals, (seq, true));
                    swap_with_next = Some(arrivals.len() - 1);
                }
            }
        }

        // Receive: a go-back-N receiver accepts only the next in-order
        // CRC-good frame; everything else is ignored or NACKed.
        let mut crc_failed = false;
        for (seq, crc_ok) in arrivals {
            if !crc_ok {
                o.crc_dropped += 1;
                crc_failed = true;
                continue;
            }
            if seq == next_expected {
                let lo = seq * mtu;
                let hi = (lo + mtu).min(data.len());
                out.extend_from_slice(&data[lo..hi]);
                next_expected += 1;
            } else if seq < next_expected {
                o.dup_ignored += 1;
            } else {
                o.ooo_discarded += 1;
            }
        }

        // The cumulative ACK rides the same lossy wire back.
        let prev_base = sender_base;
        if next_expected > sender_base && !faulty.ack_lost() {
            sender_base = next_expected;
        }
        if sender_base >= nframes {
            break;
        }

        // Something transmitted is still unacked: recovery costs one
        // round. A CRC NACK that survives the return path lets the
        // sender retransmit after a round trip instead of a full timer.
        let nack_heard = crc_failed && !faulty.ack_lost();
        let wait = if nack_heard { link.latency() + link.latency() } else { rel.ack_timeout };
        o.timeouts += 1;
        let backoff = if sender_base > prev_base {
            retries = 0;
            SimTime::ZERO
        } else {
            let b = rel.retry.backoff_after(retries);
            retries += 1;
            b
        };
        o.stall += wait + backoff;
    }

    o.completed = sender_base >= nframes;
    o.delivered = out.len() as u64;
    o.elapsed = link.transfer_time(o.wire_bytes) + o.stall;
    (o, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn crc32_check_value() {
        // The CRC-32/ISO-HDLC check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_ne!(crc32(b"123456789"), crc32(b"123456788"));
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn lossless_delivery_costs_exactly_the_bare_link() {
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        let data = payload(3 * 1024 + 100);
        let mut faulty = FaultyLink::new(FaultPlan::lossless(42));
        let (o, got) = deliver(&link, &rel, &mut faulty, &data);
        assert!(o.completed);
        assert_eq!(got, data);
        assert_eq!(o.wire_bytes, data.len() as u64);
        assert_eq!(o.retransmits, 0);
        assert_eq!(o.timeouts, 0);
        assert_eq!(o.stall, SimTime::ZERO);
        assert_eq!(o.elapsed, link.transfer_time(data.len() as u64));
    }

    #[test]
    fn drops_force_retransmits_but_bytes_arrive_intact() {
        let link = LinkModel::gigabit();
        let rel = ReliabilityConfig::default();
        let data = payload(8 * 1024);
        let mut faulty = FaultyLink::new(FaultPlan::lossless(7).with_drop(0.3));
        let (o, got) = deliver(&link, &rel, &mut faulty, &data);
        assert!(o.completed, "30% loss with budget 6 should get through: {o:?}");
        assert_eq!(got, data);
        assert!(o.retransmits > 0);
        assert!(o.timeouts > 0);
        assert!(o.stall > SimTime::ZERO);
        assert!(o.wire_bytes > data.len() as u64);
        assert_eq!(o.elapsed, link.transfer_time(o.wire_bytes) + o.stall);
    }

    #[test]
    fn corrupted_frames_are_never_accepted() {
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        let data = payload(6 * 1024);
        let mut faulty = FaultyLink::new(FaultPlan::lossless(11).with_corrupt(0.4));
        let (o, got) = deliver(&link, &rel, &mut faulty, &data);
        assert!(o.crc_dropped > 0, "40% corruption must trip the CRC");
        // Every accepted byte is correct anyway: corruption costs
        // retransmits, never integrity.
        assert!(o.completed);
        assert_eq!(got, data);
        assert_eq!(faulty.stats().corrupted as u32, o.crc_dropped);
    }

    #[test]
    fn duplicates_and_reorders_cost_little_and_corrupt_nothing() {
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        let data = payload(8 * 1024);
        let mut faulty =
            FaultyLink::new(FaultPlan::lossless(3).with_duplicate(0.2).with_reorder(0.2));
        let (o, got) = deliver(&link, &rel, &mut faulty, &data);
        assert!(o.completed);
        assert_eq!(got, data);
        assert!(o.dup_ignored > 0 || o.ooo_discarded > 0);
    }

    #[test]
    fn burst_outage_past_the_budget_leaves_an_exact_prefix() {
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        let data = payload(8 * 1024);
        // Everything from frame 2 on is swallowed, far past any budget.
        let mut faulty = FaultyLink::new(FaultPlan::lossless(5).with_burst(2, 1_000_000));
        let (o, got) = deliver(&link, &rel, &mut faulty, &data);
        assert!(!o.completed);
        assert_eq!(o.delivered, 2 * 1024);
        assert_eq!(got, data[..2 * 1024]);
        assert!(o.timeouts > rel.retry.max_retries);
    }

    #[test]
    fn same_seed_same_story() {
        let link = LinkModel::atm622();
        let rel = ReliabilityConfig::default();
        let data = payload(16 * 1024);
        let plan = FaultPlan::lossless(99).with_drop(0.2).with_corrupt(0.1);
        let (a, _) = deliver(&link, &rel, &mut FaultyLink::new(plan), &data);
        let (b, _) = deliver(&link, &rel, &mut FaultyLink::new(plan), &data);
        assert_eq!(a, b);
    }

    #[test]
    fn control_fates_follow_the_plan() {
        let mut calm = FaultyLink::new(FaultPlan::lossless(1));
        for _ in 0..16 {
            assert_eq!(calm.control_fate(), ControlFate::Deliver);
        }
        let mut stormy = FaultyLink::new(FaultPlan::lossless(1).with_drop(0.5).with_duplicate(0.5));
        let mut seen = [0u32; 2];
        for _ in 0..64 {
            match stormy.control_fate() {
                ControlFate::Drop => seen[0] += 1,
                ControlFate::Duplicate => seen[1] += 1,
                ControlFate::Deliver => unreachable!("p(drop) + p(dup) = 1"),
            }
        }
        assert!(seen[0] > 0 && seen[1] > 0);
        assert_eq!(stormy.stats().nacks_dropped + stormy.stats().nacks_duplicated, 64);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overcommitted_probabilities_panic() {
        let _ = FaultyLink::new(FaultPlan::lossless(0).with_drop(0.7).with_corrupt(0.7));
    }
}
