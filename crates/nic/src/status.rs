//! Status codes and rejection reasons.

use std::fmt;

/// Returned by a status load when a DMA initiation failed or an access
/// broke a protocol sequence. Matches the paper's `-1 means failure`.
pub const DMA_FAILURE: u64 = u64::MAX;

/// Returned by a final status load when the DMA was started and the
/// transfer is already complete ("0 means completed DMA operation").
pub const DMA_STARTED: u64 = 0;

/// Returned by intermediate status loads of a multi-access sequence that
/// is progressing correctly.
pub const DMA_PENDING: u64 = 1;

/// Returned by a status load when a remote transfer was aborted by the
/// link watchdog: the link stopped making forward progress (retry budget
/// exhausted or deadline passed), and exactly the contiguous in-order
/// prefix of the transfer was delivered. Distinct from [`DMA_FAILURE`]
/// (`-2`) so software can tell a protection failure from a transport
/// failure.
pub const DMA_LINK_FAILED: u64 = u64::MAX - 1;

/// Returned when the remote path is circuit-broken: too many consecutive
/// link-failed transfers, so the engine fails new remote posts fast
/// (`-3`) until the OS repairs the link.
pub const DMA_LINK_DOWN: u64 = u64::MAX - 2;

/// Returned by a status load when a remote transfer was aborted because
/// its *destination node* failed (crash, NI hang, or lease timeout) —
/// as opposed to the link between two live nodes ([`DMA_LINK_FAILED`]).
/// Exactly the contiguous in-order prefix was delivered; after the node
/// reboots under a new incarnation, any delivered prefix predating the
/// crash is gone with the node's volatile state, so the sender must
/// re-post from scratch (`-4`).
pub const DMA_NODE_DOWN: u64 = u64::MAX - 3;

/// Who asked the engine to start a transfer (bookkeeping for tests and
/// statistics; carries no protocol authority).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Initiator {
    /// The kernel driver via the privileged register window.
    Kernel,
    /// A user-level protocol through register context `ctx`.
    Context(u32),
    /// A user-level protocol without register contexts (SHRIMP-2, FLASH,
    /// repeated passing).
    Anonymous,
    /// A chunk of a virtual-address DMA, translated by the engine's
    /// IOMMU on behalf of address space `asid`.
    VirtDma {
        /// The posting address space (= granted register context).
        asid: u32,
    },
}

impl fmt::Display for Initiator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Initiator::Kernel => write!(f, "kernel"),
            Initiator::Context(c) => write!(f, "ctx{c}"),
            Initiator::Anonymous => write!(f, "anon"),
            Initiator::VirtDma { asid } => write!(f, "va{asid}"),
        }
    }
}

/// Why the engine refused to start a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Zero-length transfer.
    ZeroSize,
    /// Source or destination range leaves installed RAM.
    BadRange,
    /// A user-level transfer would cross a page boundary. The shadow
    /// mechanism proves access to *one* page per address; only the kernel
    /// path, which checks the whole range (Figure 1's `check_size`), may
    /// cross pages.
    PageCross,
    /// Key did not match the context's programmed key (§3.1).
    KeyMismatch,
    /// A shadow access arrived out of protocol order (§3.3: "if it sees
    /// anything out of this order, the DMA engine resets itself").
    BadSequence,
    /// A status load arrived with arguments missing.
    MissingArgs,
    /// Source and destination context ids disagree (§3.2 pairwise check).
    CtxMismatch,
    /// The remote path is circuit-broken after consecutive link-failed
    /// transfers; posts fail fast until the link is repaired.
    LinkDown,
    /// The destination node's health state machine holds it `Down`
    /// (crashed, hung, or lease-expired); posts targeting it fail fast
    /// until a probe or reboot announcement moves it to `Recovering`.
    NodeDown,
    /// The context's descriptor ring is full (or no ring is registered):
    /// the post must wait for the engine to dequeue, or fall back to a
    /// register-path initiation.
    RingFull,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::ZeroSize => "zero-size transfer",
            RejectReason::BadRange => "range outside installed memory",
            RejectReason::PageCross => "user-level transfer crosses a page boundary",
            RejectReason::KeyMismatch => "key mismatch",
            RejectReason::BadSequence => "shadow access out of protocol order",
            RejectReason::MissingArgs => "initiation with missing arguments",
            RejectReason::CtxMismatch => "source/destination context mismatch",
            RejectReason::LinkDown => "remote link circuit-broken",
            RejectReason::NodeDown => "destination node is down",
            RejectReason::RingFull => "descriptor ring full or unregistered",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_constants_are_distinct() {
        let all =
            [DMA_FAILURE, DMA_STARTED, DMA_PENDING, DMA_LINK_FAILED, DMA_LINK_DOWN, DMA_NODE_DOWN];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn failure_is_minus_one() {
        assert_eq!(DMA_FAILURE as i64, -1);
        assert_eq!(DMA_LINK_FAILED as i64, -2);
        assert_eq!(DMA_LINK_DOWN as i64, -3);
        assert_eq!(DMA_NODE_DOWN as i64, -4);
    }

    #[test]
    fn displays() {
        assert_eq!(Initiator::Kernel.to_string(), "kernel");
        assert_eq!(Initiator::Context(2).to_string(), "ctx2");
        assert_eq!(Initiator::Anonymous.to_string(), "anon");
        assert_eq!(Initiator::VirtDma { asid: 3 }.to_string(), "va3");
        assert!(RejectReason::PageCross.to_string().contains("page boundary"));
        assert!(RejectReason::NodeDown.to_string().contains("node is down"));
    }
}
