//! Layout of the NIC's memory-mapped register window.
//!
//! Offsets are relative to [`udma_mem::PhysLayout::nic_base`]. The first
//! pages are *privileged*: the model kernel simply never maps them into a
//! user address space, which is the same protection the real hardware
//! relied on. Register contexts live at page-aligned offsets so the
//! kernel can map exactly one context page per process (§3.1: "distinct
//! contexts are mapped into distinct memory pages so that each process
//! gets access rights for only a single context").

use udma_mem::PAGE_SIZE;

/// Privileged: DMA source physical address (Figure 1's `DMA_SOURCE`).
pub const DMA_SOURCE: u64 = 0x00;
/// Privileged: DMA destination physical address.
pub const DMA_DEST: u64 = 0x08;
/// Privileged: writing the size starts a kernel-level DMA.
pub const DMA_SIZE: u64 = 0x10;
/// Privileged: read the status of the last kernel-level DMA.
pub const DMA_STATUS: u64 = 0x18;
/// Privileged: the FLASH kernel patch writes the running pid here at
/// every context switch (§2.6).
pub const CURRENT_PID: u64 = 0x20;
/// Privileged: the SHRIMP kernel patch writes anything here to abort a
/// partially initiated user-level DMA (§2.5).
pub const ABORT: u64 = 0x28;
/// Privileged: physical address operand of a kernel-path atomic op.
pub const ATOMIC_ADDR: u64 = 0x30;
/// Privileged: first data operand of an atomic op.
pub const ATOMIC_OPERAND1: u64 = 0x38;
/// Privileged: second data operand (compare-and-swap's new value).
pub const ATOMIC_OPERAND2: u64 = 0x40;
/// Privileged: writing an [`crate::AtomicOp`] code executes it; reading
/// returns the result of the last one.
pub const ATOMIC_CMD: u64 = 0x48;
/// Privileged: base of the per-context key table; key for context `i`
/// lives at `KEY_TABLE_BASE + 8*i` (§3.1: keys are "stored by the
/// operating system in the DMA engine, in memory locations unreadable by
/// user processes").
pub const KEY_TABLE_BASE: u64 = 0x80;
/// Privileged: base of the per-context descriptor-ring base table; the
/// host-physical address of context `i`'s ring lives at
/// `RING_BASE_TABLE + 8*i`. Programmed by the OS when it registers a
/// ring through the §3.2 grant path — user code never sees this window.
pub const RING_BASE_TABLE: u64 = 0xC0;
/// Privileged: base of the per-context descriptor-ring control table;
/// the slot capacity of context `i`'s ring lives at
/// `RING_CTL_TABLE + 8*i`. Writing 0 deregisters the ring.
pub const RING_CTL_TABLE: u64 = 0x100;

/// Maximum register contexts the engine supports ("several (say 4 to 8)
/// register contexts", §3.1).
pub const MAX_CONTEXTS: u32 = 8;

/// Offset of the first register-context page.
pub const CTX_PAGE_BASE: u64 = 2 * PAGE_SIZE;

/// Offset within a context page: store = DMA size, load = status /
/// bytes remaining.
pub const CTX_SIZE_TRIGGER: u64 = 0x00;
/// Offset within a context page: first atomic operand.
pub const CTX_ATOMIC_OPERAND1: u64 = 0x08;
/// Offset within a context page: second atomic operand.
pub const CTX_ATOMIC_OPERAND2: u64 = 0x10;
/// Offset within a context page: store op-code = execute atomic, load =
/// result.
pub const CTX_ATOMIC_CMD: u64 = 0x18;
/// Offset within a context page: stage the source **virtual** address of
/// a virtual-address DMA (IOMMU-equipped engines only; the follow-on
/// Telegraphos IOMMU work).
pub const CTX_VIRT_SRC: u64 = 0x20;
/// Offset within a context page: stage the destination virtual address.
pub const CTX_VIRT_DST: u64 = 0x28;
/// Offset within a context page: store = size, posts the staged
/// virtual-address DMA; load = its status (bytes remaining, or
/// [`crate::DMA_FAILURE`]).
pub const CTX_VIRT_GO: u64 = 0x30;
/// Offset within a context page: the descriptor-ring doorbell. Store =
/// the absolute tail index (one past the last posted slot) — the engine
/// dequeues, translates and launches every descriptor from its head
/// cursor up to the tail with one user-level store. Load = descriptors
/// posted but not yet dequeued. Only decoded when the engine has rings
/// enabled ([`crate::EngineCore::enable_rings`]).
pub const CTX_RING_DB: u64 = 0x38;

/// Whether a within-page offset belongs to the virtual-address DMA
/// window (only decoded when the engine has an IOMMU).
pub fn is_virt_offset(off: u64) -> bool {
    matches!(off, CTX_VIRT_SRC | CTX_VIRT_DST | CTX_VIRT_GO)
}

/// Whether a within-page offset belongs to the descriptor-ring window
/// (only decoded when the engine has rings enabled).
pub fn is_ring_offset(off: u64) -> bool {
    off == CTX_RING_DB
}

/// Offset (from the NIC base) of context `ctx`'s page.
pub fn ctx_page_offset(ctx: u32) -> u64 {
    CTX_PAGE_BASE + ctx as u64 * PAGE_SIZE
}

/// Decodes a window offset into `(context, offset-within-page)` if it
/// falls inside a context page.
pub fn decode_ctx_offset(offset: u64) -> Option<(u32, u64)> {
    if offset < CTX_PAGE_BASE {
        return None;
    }
    let rel = offset - CTX_PAGE_BASE;
    let ctx = (rel / PAGE_SIZE) as u32;
    if ctx >= MAX_CONTEXTS {
        return None;
    }
    Some((ctx, rel % PAGE_SIZE))
}

/// Number of bits of the key/context store payload that carry the context
/// id; the rest is the key ("in 64-bit architectures, there will be close
/// to 60 bits available for the key field", §3.1).
pub const CTX_ID_BITS: u32 = 3;

/// Packs `key # context_id` into the data payload of a key-based shadow
/// store (Figure 3's `KEY#CONTEXT_ID`).
///
/// # Panics
///
/// Panics if `ctx >= MAX_CONTEXTS` or the key overflows its 61 bits.
pub fn encode_key_ctx(key: u64, ctx: u32) -> u64 {
    assert!(ctx < MAX_CONTEXTS, "context id out of range");
    assert!(key < (1 << (64 - CTX_ID_BITS)), "key too wide");
    (key << CTX_ID_BITS) | ctx as u64
}

/// Unpacks a key-based store payload into `(key, context_id)`.
pub fn decode_key_ctx(data: u64) -> (u64, u32) {
    (data >> CTX_ID_BITS, (data & ((1 << CTX_ID_BITS) - 1)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privileged_registers_fit_below_context_pages() {
        assert!(KEY_TABLE_BASE + 8 * MAX_CONTEXTS as u64 <= CTX_PAGE_BASE);
        assert!(RING_CTL_TABLE + 8 * MAX_CONTEXTS as u64 <= CTX_PAGE_BASE);
    }

    #[test]
    fn ring_tables_do_not_overlap_the_key_table() {
        assert!(KEY_TABLE_BASE + 8 * MAX_CONTEXTS as u64 <= RING_BASE_TABLE);
        assert!(RING_BASE_TABLE + 8 * MAX_CONTEXTS as u64 <= RING_CTL_TABLE);
    }

    #[test]
    fn ring_doorbell_is_a_context_page_offset() {
        assert!(is_ring_offset(CTX_RING_DB));
        assert!(!is_ring_offset(CTX_VIRT_GO));
        assert!(!is_virt_offset(CTX_RING_DB));
        assert_eq!(decode_ctx_offset(ctx_page_offset(1) + CTX_RING_DB), Some((1, CTX_RING_DB)));
    }

    #[test]
    fn ctx_pages_are_page_aligned_and_distinct() {
        for c in 0..MAX_CONTEXTS {
            let off = ctx_page_offset(c);
            assert_eq!(off % PAGE_SIZE, 0);
            assert_eq!(decode_ctx_offset(off), Some((c, 0)));
            assert_eq!(decode_ctx_offset(off + 0x18), Some((c, 0x18)));
        }
    }

    #[test]
    fn decode_rejects_privileged_window_and_beyond() {
        assert_eq!(decode_ctx_offset(DMA_SIZE), None);
        assert_eq!(decode_ctx_offset(ctx_page_offset(MAX_CONTEXTS)), None);
    }

    #[test]
    fn key_ctx_round_trip() {
        for ctx in 0..MAX_CONTEXTS {
            let key = 0x1234_5678_9ABCu64;
            let packed = encode_key_ctx(key, ctx);
            assert_eq!(decode_key_ctx(packed), (key, ctx));
        }
    }

    #[test]
    #[should_panic(expected = "context id")]
    fn encode_bad_ctx_panics() {
        let _ = encode_key_ctx(1, MAX_CONTEXTS);
    }

    #[test]
    #[should_panic(expected = "key too wide")]
    fn encode_bad_key_panics() {
        let _ = encode_key_ctx(1 << 61, 0);
    }

    #[test]
    fn key_field_width_close_to_sixty_bits() {
        // §3.1: "close to 60 bits available for the key field".
        assert_eq!(64 - CTX_ID_BITS, 61);
    }
}
