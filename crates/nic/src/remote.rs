//! Remote workstation memory: the "NOW" half of the story.
//!
//! The paper's interfaces (SHRIMP, Telegraphos) move data *between
//! workstations*: SHRIMP-1's mapped-out pages live on another node.
//! [`Cluster`] models the receive side of such a network — per-node
//! physical memories the DMA engine can deposit into over the link.
//! Only the data path is modelled (deposits appear after the wire time);
//! remote nodes do not initiate traffic of their own.
//!
//! With [`Cluster::enable_virt`] each node additionally owns a
//! receive-side [`Iommu`] (I/O page table + IOTLB, reused wholesale from
//! `udma-iommu`) and a NACK queue, which is what the Psistakis follow-on
//! theses add to Telegraphos: incoming packets name **virtual** addresses
//! in a destination address space, the receiving NI translates them, and
//! a translation failure NACKs the packet back to the sender instead of
//! depositing anywhere.

use crate::crash::CrashStats;
use crate::faulty::DeliveryOutcome;
use crate::virt::PendingFault;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use udma_iommu::{Asid, IoFault, Iommu, IotlbConfig};
use udma_mem::{Access, MemFault, PhysAddr, PhysFrame, PhysMemory, VirtAddr, VirtPage};

/// A handle to the cluster's remote memories, shared between the engine
/// and the experiment code that inspects arrivals.
pub type SharedCluster = Rc<RefCell<Cluster>>;

/// Why a cluster access failed. Unlike a bare [`MemFault`], this keeps
/// "the node does not exist" distinct from "the node exists but the
/// address is bad", and names the node either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteError {
    /// The cluster has no node with this index.
    NoSuchNode {
        /// The requested node index.
        node: u32,
    },
    /// The node exists, but the access faulted in its memory (out of
    /// range, misaligned, …).
    Mem {
        /// The node the access was addressed to.
        node: u32,
        /// The underlying memory fault on that node.
        fault: MemFault,
    },
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::NoSuchNode { node } => write!(f, "no such cluster node {node}"),
            RemoteError::Mem { node, fault } => write!(f, "node {node}: {fault}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// What a node's receive-side delivery engine saw cross the (possibly
/// lossy) link: the counters the go-back-N layer reports per deposit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeLinkStats {
    /// Reliable deliveries addressed to this node.
    pub deliveries: u64,
    /// Bytes accepted in order (the deposited payload).
    pub bytes_accepted: u64,
    /// Data frames retransmitted to this node.
    pub retransmits: u64,
    /// Frames discarded for a bad CRC — none of these were ever acked.
    pub crc_dropped: u64,
    /// Duplicate frames ignored (cumulative ACK already covered them).
    pub dup_ignored: u64,
    /// Out-of-order frames a go-back-N receiver discards.
    pub ooo_discarded: u64,
}

/// A multi-page `RemoteVirt` transfer's destination range, as announced
/// in its first frame. The receive side uses it two ways: its IOMMU
/// prewalks ahead of the arriving deposits, and — when a page does
/// fault — the node's OS can service the *entire remaining range* in
/// one go, so a cold contiguous buffer costs one NACK round trip
/// instead of one per page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DstAnnouncement {
    /// Destination address space on the node.
    pub asid: Asid,
    /// Start of the announced destination range.
    pub va: VirtAddr,
    /// Length of the announced range in bytes.
    pub len: u64,
}

/// One remote workstation: its memory, and — when virtual-address RDMA
/// is enabled — its receive-side translation unit and NACK queue.
#[derive(Clone, Debug)]
struct RemoteNode {
    mem: PhysMemory,
    /// Receive-side IOMMU (present once [`Cluster::enable_virt`] ran).
    iommu: Option<Iommu>,
    /// Faults this node NACKed back to the sender, tagged with the
    /// sender's transfer id so the retry finds its transfer. The remote
    /// node's OS drains this, exactly as the local OS drains the
    /// engine's own fault queue.
    nacks: VecDeque<PendingFault>,
    /// NACKs ever raised (monotonic; the queue length only reports
    /// pending ones).
    nacks_raised: u64,
    /// Receive-side view of the lossy link (all zero on an ideal wire).
    link_stats: NodeLinkStats,
    /// Announced destination ranges of in-flight transfers, keyed by the
    /// sender's transfer id.
    announced: BTreeMap<usize, DstAnnouncement>,
    /// Whether the node is powered and running (false between a crash
    /// and its reboot).
    up: bool,
    /// Whether the node's NI engine is hung (frames dropped, state kept).
    hung: bool,
    /// Incarnation epoch, bumped by every reboot. Stale pre-crash state
    /// is fenced against this.
    inc: u64,
    /// Failure accounting.
    crash: CrashStats,
}

/// The remote nodes reachable over the machine's link.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<RemoteNode>,
    /// Per-node RAM size, kept so a reboot can rebuild a node's memory.
    bytes_per_node: u64,
    /// IOTLB geometry handed to [`enable_virt`](Self::enable_virt), kept
    /// so a reboot can rebuild a node's IOMMU.
    iotlb: Option<IotlbConfig>,
}

impl Cluster {
    /// Creates `count` remote nodes with `bytes_per_node` of memory each.
    pub fn new(count: u32, bytes_per_node: u64) -> Self {
        Cluster {
            nodes: (0..count)
                .map(|_| RemoteNode {
                    mem: PhysMemory::new(bytes_per_node),
                    iommu: None,
                    nacks: VecDeque::new(),
                    nacks_raised: 0,
                    link_stats: NodeLinkStats::default(),
                    announced: BTreeMap::new(),
                    up: true,
                    hung: false,
                    inc: 0,
                    crash: CrashStats::default(),
                })
                .collect(),
            bytes_per_node,
            iotlb: None,
        }
    }

    /// Wraps the cluster for sharing.
    pub fn shared(self) -> SharedCluster {
        Rc::new(RefCell::new(self))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` exists.
    pub fn has_node(&self, node: u32) -> bool {
        (node as usize) < self.nodes.len()
    }

    fn node(&self, node: u32) -> Result<&RemoteNode, RemoteError> {
        self.nodes.get(node as usize).ok_or(RemoteError::NoSuchNode { node })
    }

    fn node_mut(&mut self, node: u32) -> Result<&mut RemoteNode, RemoteError> {
        self.nodes.get_mut(node as usize).ok_or(RemoteError::NoSuchNode { node })
    }

    /// Writes `data` into `node`'s memory at `addr` (the engine's deposit
    /// path).
    ///
    /// # Errors
    ///
    /// [`RemoteError::NoSuchNode`] if the node does not exist,
    /// [`RemoteError::Mem`] if the range is outside its memory.
    pub fn deposit(&mut self, node: u32, addr: PhysAddr, data: &[u8]) -> Result<(), RemoteError> {
        self.node_mut(node)?
            .mem
            .write_bytes(addr, data)
            .map_err(|fault| RemoteError::Mem { node, fault })
    }

    /// Reads from `node`'s memory (experiment inspection: "did the
    /// message arrive?").
    ///
    /// # Errors
    ///
    /// As for [`deposit`](Self::deposit).
    pub fn read(&self, node: u32, addr: PhysAddr, buf: &mut [u8]) -> Result<(), RemoteError> {
        self.node(node)?.mem.read_bytes(addr, buf).map_err(|fault| RemoteError::Mem { node, fault })
    }

    /// Reads one word from a node's memory.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read), plus misalignment.
    pub fn read_u64(&self, node: u32, addr: PhysAddr) -> Result<u64, RemoteError> {
        self.node(node)?.mem.read_u64(addr).map_err(|fault| RemoteError::Mem { node, fault })
    }

    // ---- virtual-address RDMA (receive side) ------------------------

    /// Equips every node with a receive-side IOMMU so incoming transfers
    /// can name virtual addresses in the node's address spaces
    /// (idempotent per node: existing IOMMUs are kept).
    pub fn enable_virt(&mut self, iotlb: IotlbConfig) {
        self.iotlb = Some(iotlb);
        for n in &mut self.nodes {
            if n.iommu.is_none() {
                n.iommu = Some(Iommu::new(iotlb));
            }
        }
    }

    /// Whether the nodes have receive-side IOMMUs.
    pub fn virt_enabled(&self) -> bool {
        self.nodes.iter().all(|n| n.iommu.is_some()) && !self.nodes.is_empty()
    }

    /// A node's receive-side IOMMU.
    pub fn node_iommu(&self, node: u32) -> Option<&Iommu> {
        self.nodes.get(node as usize).and_then(|n| n.iommu.as_ref())
    }

    /// Mutable receive-side IOMMU of a node (the node's OS maps/unmaps
    /// and pins through this).
    pub fn node_iommu_mut(&mut self, node: u32) -> Option<&mut Iommu> {
        self.nodes.get_mut(node as usize).and_then(|n| n.iommu.as_mut())
    }

    /// Translates an incoming deposit's destination on `node`'s
    /// receive-side IOMMU. This is the per-chunk step of every
    /// virtual-address *remote* transfer, and the walk count it adds to
    /// the node's IOTLB stats is the receive-side walk cost the sender's
    /// clock is charged with.
    ///
    /// # Errors
    ///
    /// The [`IoFault`] that the node NACKs back over the link.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or [`Cluster::enable_virt`]
    /// never ran — the engine validates both at post time.
    pub fn translate(
        &mut self,
        node: u32,
        asid: Asid,
        va: VirtAddr,
        access: Access,
    ) -> Result<PhysAddr, IoFault> {
        self.nodes[node as usize]
            .iommu
            .as_mut()
            .expect("remote translate requires enable_virt")
            .translate(asid, va, access)
    }

    /// Queues a NACKed fault on `node` for its OS fault service. Tests
    /// may push the same fault twice to model a duplicated NACK.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn push_fault(&mut self, node: u32, pending: PendingFault) {
        let n = &mut self.nodes[node as usize];
        n.nacks_raised += 1;
        n.nacks.push_back(pending);
    }

    /// Dequeues the oldest NACKed fault of `node` (the node's OS fault
    /// service polls this). Tests may pop-and-discard to model a NACK
    /// lost on the wire.
    pub fn pop_fault(&mut self, node: u32) -> Option<PendingFault> {
        self.nodes.get_mut(node as usize).and_then(|n| n.nacks.pop_front())
    }

    /// Pending NACKed faults on `node`.
    pub fn fault_backlog(&self, node: u32) -> usize {
        self.nodes.get(node as usize).map_or(0, |n| n.nacks.len())
    }

    /// NACKs ever raised by `node` (including serviced ones).
    pub fn faults_raised(&self, node: u32) -> u64 {
        self.nodes.get(node as usize).map_or(0, |n| n.nacks_raised)
    }

    /// Peeks at `node`'s receive-side IOTLB for the frame backing
    /// `(asid, page)` — the coalescer's lookahead, which never counts a
    /// miss (see [`udma_iommu::Iommu::probe`]).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or [`Cluster::enable_virt`]
    /// never ran.
    pub fn probe(
        &mut self,
        node: u32,
        asid: Asid,
        page: VirtPage,
        access: Access,
    ) -> Option<PhysFrame> {
        self.nodes[node as usize]
            .iommu
            .as_mut()
            .expect("remote probe requires enable_virt")
            .probe(asid, page, access)
    }

    /// Records a transfer's announced destination range on `node`
    /// (carried by the transfer's first frame). Overwrites any earlier
    /// announcement of the same sender transfer id.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist — the engine validates the
    /// node at post time.
    pub fn announce(&mut self, node: u32, xfer: usize, ann: DstAnnouncement) {
        self.nodes[node as usize].announced.insert(xfer, ann);
    }

    /// The announced destination range of sender transfer `xfer` on
    /// `node`, if one is in flight.
    pub fn announcement(&self, node: u32, xfer: usize) -> Option<DstAnnouncement> {
        self.nodes.get(node as usize).and_then(|n| n.announced.get(&xfer).copied())
    }

    /// Drops a transfer's announcement (transfer reached a terminal
    /// state, or the sender never announced).
    pub fn retire_announcement(&mut self, node: u32, xfer: usize) {
        if let Some(n) = self.nodes.get_mut(node as usize) {
            n.announced.remove(&xfer);
        }
    }

    /// Prewalks `node`'s receive-side IOMMU over `[va, va + len)` —
    /// the receive-side half of the translation pipeline. Best-effort
    /// like [`udma_iommu::Iommu::prewalk_range`]: stops at the first
    /// unresolvable page without raising a NACK. Returns the number of
    /// walks performed so the sender's clock can charge them at the
    /// amortized batch rate.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or [`Cluster::enable_virt`]
    /// never ran.
    pub fn prewalk(
        &mut self,
        node: u32,
        asid: Asid,
        va: VirtAddr,
        len: u64,
        access: Access,
    ) -> u64 {
        self.nodes[node as usize]
            .iommu
            .as_mut()
            .expect("remote prewalk requires enable_virt")
            .prewalk_range(asid, va, len, access)
    }

    /// Folds one reliable delivery's outcome into `node`'s receive-side
    /// link counters (the mover calls this per deposit over a chaos
    /// link).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist — the mover deposits only to
    /// validated nodes.
    pub fn note_delivery(&mut self, node: u32, outcome: &DeliveryOutcome) {
        let s = &mut self.nodes[node as usize].link_stats;
        s.deliveries += 1;
        s.bytes_accepted += outcome.delivered;
        s.retransmits += outcome.retransmits as u64;
        s.crc_dropped += outcome.crc_dropped as u64;
        s.dup_ignored += outcome.dup_ignored as u64;
        s.ooo_discarded += outcome.ooo_discarded as u64;
    }

    /// Receive-side link counters of `node` (all zero on an ideal wire
    /// or a missing node).
    pub fn link_stats(&self, node: u32) -> NodeLinkStats {
        self.nodes.get(node as usize).map_or(NodeLinkStats::default(), |n| n.link_stats)
    }

    // ---- node fault domain ------------------------------------------

    /// Whether `node` is powered, running, and answering frames (false
    /// while crashed *or* NI-hung; false for a missing node).
    pub fn node_responsive(&self, node: u32) -> bool {
        self.nodes.get(node as usize).is_some_and(|n| n.up && !n.hung)
    }

    /// Whether `node` is powered at all (an NI-hung node is up but not
    /// responsive).
    pub fn node_up(&self, node: u32) -> bool {
        self.nodes.get(node as usize).is_some_and(|n| n.up)
    }

    /// `node`'s current incarnation epoch (0 until its first reboot).
    pub fn node_incarnation(&self, node: u32) -> u64 {
        self.nodes.get(node as usize).map_or(0, |n| n.inc)
    }

    /// `node`'s failure accounting.
    pub fn crash_stats(&self, node: u32) -> CrashStats {
        self.nodes.get(node as usize).map_or(CrashStats::default(), |n| n.crash)
    }

    /// Crashes `node`: it goes silent immediately and its queued NACK
    /// backlog — pre-crash faults the OS never got to — is fenced, not
    /// serviced. Memory and IOMMU contents formally die here too; they
    /// are rebuilt (empty) at [`reboot_node`](Self::reboot_node).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn crash_node(&mut self, node: u32) {
        let n = &mut self.nodes[node as usize];
        n.up = false;
        n.hung = false;
        n.crash.crashes += 1;
        n.crash.fenced_faults += n.nacks.len() as u64;
        n.nacks.clear();
        n.announced.clear();
    }

    /// Reboots a crashed `node` under a new incarnation epoch: fresh
    /// (zeroed) memory, a fresh receive-side IOMMU with no contexts,
    /// mappings or IOTLB entries, and no announced ranges. Returns the
    /// new epoch. The caller (the node's OS) re-exposes and re-pins
    /// from its persistent grant records afterward.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or is not crashed.
    pub fn reboot_node(&mut self, node: u32) -> u64 {
        let iotlb = self.iotlb;
        let bytes = self.bytes_per_node;
        let n = &mut self.nodes[node as usize];
        assert!(!n.up, "reboot of a node that never crashed");
        n.up = true;
        n.inc += 1;
        n.crash.reboots += 1;
        n.mem = PhysMemory::new(bytes);
        n.iommu = iotlb.map(Iommu::new);
        n.nacks.clear();
        n.announced.clear();
        n.inc
    }

    /// Hangs `node`'s NI engine: frames to it vanish, but all state
    /// survives and the incarnation does not change.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn hang_node(&mut self, node: u32) {
        let n = &mut self.nodes[node as usize];
        n.hung = true;
        n.crash.hangs += 1;
    }

    /// Ends an NI-engine hang; paused transfers may resume where they
    /// stopped, since nothing was lost.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn unhang_node(&mut self, node: u32) {
        self.nodes[node as usize].hung = false;
    }

    /// Counts a frame the sender fired into a crashed or hung node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn note_dropped(&mut self, node: u32) {
        self.nodes[node as usize].crash.dropped_down += 1;
    }

    /// Books one grant record replayed (re-exposed) during a reboot.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn note_regrant(&mut self, node: u32) {
        self.nodes[node as usize].crash.regrants += 1;
    }

    /// Books one pin record replayed (re-pinned) during a reboot.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn note_repin(&mut self, node: u32) {
        self.nodes[node as usize].crash.repins += 1;
    }
}

/// Where a transfer's bytes land: locally or on a cluster node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Destination {
    /// This workstation's own memory.
    Local(PhysAddr),
    /// A remote node's memory, by physical address (SHRIMP-1 style:
    /// the sender proved the mapping at map-out time).
    Remote {
        /// Node index within the cluster.
        node: u32,
        /// Physical address on that node.
        addr: PhysAddr,
    },
    /// A remote node's memory, by **virtual** address in one of the
    /// node's address spaces — the receiving NI translates (and may
    /// NACK a page fault back).
    RemoteVirt {
        /// Node index within the cluster.
        node: u32,
        /// Destination address space on that node.
        asid: Asid,
        /// Virtual address within that address space.
        va: VirtAddr,
    },
}

impl std::fmt::Display for Destination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Destination::Local(pa) => write!(f, "{pa}"),
            Destination::Remote { node, addr } => write!(f, "node{node}:{addr}"),
            Destination::RemoteVirt { node, asid, va } => {
                write!(f, "node{node}:as{asid}:{va}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma_iommu::IoFaultKind;
    use udma_mem::{Perms, PhysFrame, VirtPage, PAGE_SIZE};

    #[test]
    fn deposit_and_read_back() {
        let mut c = Cluster::new(2, 1 << 16);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        c.deposit(1, PhysAddr::new(0x100), b"hello node").unwrap();
        let mut buf = [0u8; 10];
        c.read(1, PhysAddr::new(0x100), &mut buf).unwrap();
        assert_eq!(&buf, b"hello node");
        // Node 0 untouched.
        c.read(0, PhysAddr::new(0x100), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 10]);
    }

    /// Pins the error shape: a nonexistent node and an out-of-range
    /// address are *distinct* failures, and both carry the node index.
    #[test]
    fn missing_node_and_bad_offset_are_distinct_errors() {
        let mut c = Cluster::new(1, 1 << 13);
        assert!(!c.has_node(1));
        // No such node: NoSuchNode, carrying the node id.
        assert_eq!(c.deposit(1, PhysAddr::new(0), b"x"), Err(RemoteError::NoSuchNode { node: 1 }));
        let mut b = [0u8; 1];
        assert_eq!(c.read(9, PhysAddr::new(0), &mut b), Err(RemoteError::NoSuchNode { node: 9 }));
        assert_eq!(c.read_u64(7, PhysAddr::new(0)), Err(RemoteError::NoSuchNode { node: 7 }));
        // Existing node, bad offset: Mem with the node's own BusError.
        let off = PhysAddr::new(1 << 13);
        assert_eq!(
            c.deposit(0, off, b"x"),
            Err(RemoteError::Mem { node: 0, fault: MemFault::BusError { pa: off } })
        );
        assert!(matches!(c.read(0, off, &mut b), Err(RemoteError::Mem { node: 0, .. })));
        // Display keeps them tellable-apart too.
        assert!(RemoteError::NoSuchNode { node: 1 }.to_string().contains("no such"));
        assert!(c.deposit(0, off, b"x").unwrap_err().to_string().contains("node 0"));
    }

    #[test]
    fn enable_virt_gives_every_node_an_iommu() {
        let mut c = Cluster::new(2, 1 << 16);
        assert!(!c.virt_enabled());
        assert!(c.node_iommu(0).is_none());
        c.enable_virt(IotlbConfig::default());
        assert!(c.virt_enabled());
        assert!(c.node_iommu(0).is_some());
        assert!(c.node_iommu(1).is_some());
        assert!(c.node_iommu(2).is_none());
    }

    #[test]
    fn remote_translate_faults_until_mapped() {
        let mut c = Cluster::new(1, 1 << 16);
        c.enable_virt(IotlbConfig::default());
        let iommu = c.node_iommu_mut(0).unwrap();
        iommu.create_context(7);
        let va = VirtAddr::new(2 * PAGE_SIZE + 0x40);
        let f = c.translate(0, 7, va, Access::Write).unwrap_err();
        assert_eq!(f.kind, IoFaultKind::Unmapped);
        assert_eq!(f.asid, 7);
        c.node_iommu_mut(0)
            .unwrap()
            .map(7, VirtPage::new(2), PhysFrame::new(3), Perms::READ_WRITE, true)
            .unwrap();
        let pa = c.translate(0, 7, va, Access::Write).unwrap();
        assert_eq!(pa, PhysFrame::new(3).base() + 0x40);
    }

    #[test]
    fn nack_queue_is_fifo_and_counts() {
        let mut c = Cluster::new(1, 1 << 16);
        let f = |va: u64| PendingFault {
            xfer: 3,
            fault: IoFault {
                asid: 7,
                va: VirtAddr::new(va),
                access: Access::Write,
                kind: IoFaultKind::Unmapped,
            },
        };
        assert_eq!(c.fault_backlog(0), 0);
        c.push_fault(0, f(0x1000));
        c.push_fault(0, f(0x2000));
        assert_eq!(c.fault_backlog(0), 2);
        assert_eq!(c.faults_raised(0), 2);
        assert_eq!(c.pop_fault(0).unwrap().fault.va, VirtAddr::new(0x1000));
        assert_eq!(c.pop_fault(0).unwrap().fault.va, VirtAddr::new(0x2000));
        assert!(c.pop_fault(0).is_none());
        // Draining does not reset the raised counter; bad node is calm.
        assert_eq!(c.faults_raised(0), 2);
        assert_eq!(c.fault_backlog(9), 0);
        assert!(c.pop_fault(9).is_none());
    }

    #[test]
    fn crash_fences_the_backlog_and_reboot_bumps_the_incarnation() {
        let mut c = Cluster::new(2, 1 << 16);
        c.enable_virt(IotlbConfig::default());
        c.node_iommu_mut(1).unwrap().create_context(7);
        c.node_iommu_mut(1)
            .unwrap()
            .map(7, VirtPage::new(2), PhysFrame::new(3), Perms::READ_WRITE, true)
            .unwrap();
        c.deposit(1, PhysFrame::new(3).base(), b"pre-crash bytes").unwrap();
        c.push_fault(
            1,
            PendingFault {
                xfer: 0,
                fault: IoFault {
                    asid: 7,
                    va: VirtAddr::new(5 * PAGE_SIZE),
                    access: Access::Write,
                    kind: IoFaultKind::Unmapped,
                },
            },
        );
        assert!(c.node_responsive(1));
        c.crash_node(1);
        assert!(!c.node_responsive(1) && !c.node_up(1));
        // The queued pre-crash NACK is fenced, never serviced.
        assert!(c.pop_fault(1).is_none());
        assert_eq!(c.crash_stats(1).fenced_faults, 1);
        assert_eq!(c.reboot_node(1), 1, "first reboot is incarnation 1");
        assert!(c.node_responsive(1));
        assert_eq!(c.node_incarnation(1), 1);
        // Volatile state died: memory zeroed, IOMMU contexts gone.
        let mut buf = [0u8; 15];
        c.read(1, PhysFrame::new(3).base(), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 15], "pre-crash memory does not survive a reboot");
        assert!(!c.node_iommu(1).unwrap().has_context(7));
        // A hang is survivable: state intact, same incarnation.
        c.hang_node(0);
        assert!(c.node_up(0) && !c.node_responsive(0));
        c.unhang_node(0);
        assert!(c.node_responsive(0));
        assert_eq!(c.node_incarnation(0), 0);
        assert_eq!(c.crash_stats(0).hangs, 1);
    }

    #[test]
    fn destination_display() {
        assert_eq!(Destination::Local(PhysAddr::new(0x40)).to_string(), "0x40");
        assert_eq!(
            Destination::Remote { node: 2, addr: PhysAddr::new(0x80) }.to_string(),
            "node2:0x80"
        );
        assert_eq!(
            Destination::RemoteVirt { node: 1, asid: 7, va: VirtAddr::new(0x2000) }.to_string(),
            "node1:as7:0x2000"
        );
    }
}
