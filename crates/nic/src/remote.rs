//! Remote workstation memory: the "NOW" half of the story.
//!
//! The paper's interfaces (SHRIMP, Telegraphos) move data *between
//! workstations*: SHRIMP-1's mapped-out pages live on another node.
//! [`Cluster`] models the receive side of such a network — per-node
//! physical memories the DMA engine can deposit into over the link.
//! Only the data path is modelled (deposits appear after the wire time);
//! remote nodes do not initiate traffic of their own.

use std::cell::RefCell;
use std::rc::Rc;
use udma_mem::{MemFault, PhysAddr, PhysMemory};

/// A handle to the cluster's remote memories, shared between the engine
/// and the experiment code that inspects arrivals.
pub type SharedCluster = Rc<RefCell<Cluster>>;

/// The remote nodes reachable over the machine's link.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<PhysMemory>,
}

impl Cluster {
    /// Creates `count` remote nodes with `bytes_per_node` of memory each.
    pub fn new(count: u32, bytes_per_node: u64) -> Self {
        Cluster { nodes: (0..count).map(|_| PhysMemory::new(bytes_per_node)).collect() }
    }

    /// Wraps the cluster for sharing.
    pub fn shared(self) -> SharedCluster {
        Rc::new(RefCell::new(self))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` exists.
    pub fn has_node(&self, node: u32) -> bool {
        (node as usize) < self.nodes.len()
    }

    /// Writes `data` into `node`'s memory at `addr` (the engine's deposit
    /// path).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the node does not exist or the range is
    /// outside its memory.
    pub fn deposit(&mut self, node: u32, addr: PhysAddr, data: &[u8]) -> Result<(), MemFault> {
        let mem = self.nodes.get_mut(node as usize).ok_or(MemFault::BusError { pa: addr })?;
        mem.write_bytes(addr, data)
    }

    /// Reads from `node`'s memory (experiment inspection: "did the
    /// message arrive?").
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the node does not exist or the range is
    /// outside its memory.
    pub fn read(&self, node: u32, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemFault> {
        let mem = self.nodes.get(node as usize).ok_or(MemFault::BusError { pa: addr })?;
        mem.read_bytes(addr, buf)
    }

    /// Reads one word from a node's memory.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read), plus misalignment.
    pub fn read_u64(&self, node: u32, addr: PhysAddr) -> Result<u64, MemFault> {
        self.nodes.get(node as usize).ok_or(MemFault::BusError { pa: addr })?.read_u64(addr)
    }
}

/// Where a transfer's bytes land: locally or on a cluster node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Destination {
    /// This workstation's own memory.
    Local(PhysAddr),
    /// A remote node's memory.
    Remote {
        /// Node index within the cluster.
        node: u32,
        /// Physical address on that node.
        addr: PhysAddr,
    },
}

impl std::fmt::Display for Destination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Destination::Local(pa) => write!(f, "{pa}"),
            Destination::Remote { node, addr } => write!(f, "node{node}:{addr}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_and_read_back() {
        let mut c = Cluster::new(2, 1 << 16);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        c.deposit(1, PhysAddr::new(0x100), b"hello node").unwrap();
        let mut buf = [0u8; 10];
        c.read(1, PhysAddr::new(0x100), &mut buf).unwrap();
        assert_eq!(&buf, b"hello node");
        // Node 0 untouched.
        c.read(0, PhysAddr::new(0x100), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 10]);
    }

    #[test]
    fn missing_node_is_bus_error() {
        let mut c = Cluster::new(1, 1 << 16);
        assert!(!c.has_node(1));
        assert!(c.deposit(1, PhysAddr::new(0), b"x").is_err());
        let mut b = [0u8; 1];
        assert!(c.read(9, PhysAddr::new(0), &mut b).is_err());
    }

    #[test]
    fn out_of_range_deposit_fails() {
        let mut c = Cluster::new(1, 1 << 13);
        assert!(c.deposit(0, PhysAddr::new(1 << 13), b"x").is_err());
    }

    #[test]
    fn destination_display() {
        assert_eq!(Destination::Local(PhysAddr::new(0x40)).to_string(), "0x40");
        assert_eq!(
            Destination::Remote { node: 2, addr: PhysAddr::new(0x80) }.to_string(),
            "node2:0x80"
        );
    }
}
