//! Cross-node wire protocol for the sharded cluster simulation.
//!
//! In the sharded world every node is a *sender*: it owns its transfers,
//! its seeded chaos link, and its go-back-N engine, and talks to other
//! nodes only through [`Envelope`]s on explicit sim channels — data
//! chunks, cumulative ACKs, translation-fault NACKs, and destination
//! announcements, exactly the message kinds the Telegraphos follow-on
//! receive side exchanges. The types here are deliberately free of any
//! OS or shard dependency so `udma` (which owns the shards) and tests
//! can share them.
//!
//! Ordering is the load-bearing design point: an [`Envelope`] carries
//! `(src_node, seq)` where `seq` is the *node's* monotonic emission
//! counter — not a per-channel counter. A receiver that processes its
//! merged traffic in `(arrival, src_node, seq)` order therefore behaves
//! identically whether the cluster runs on one shard or eight, which is
//! what the differential-determinism harness pins.

use crate::faulty::{deliver, DeliveryOutcome, FaultyLink, ReliabilityConfig};
use crate::link::{LinkModel, RetryPolicy};
use crate::remote::DstAnnouncement;
use std::fmt;
use udma_bus::SimTime;
use udma_iommu::{Asid, IoFault};
use udma_mem::{VirtAddr, PAGE_SIZE};

/// Globally unique transfer id: source node plus the node's posting
/// index. Stable across shard layouts by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XferId {
    /// The posting (sending) node.
    pub node: u32,
    /// Posting index on that node.
    pub index: u32,
}

impl fmt::Display for XferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}.x{}", self.node, self.index)
    }
}

/// One protocol message between two cluster nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum NetMsg {
    /// The transfer's whole destination range, carried ahead of its
    /// first data chunk so the receiving node's OS can service a cold
    /// range in one kernel entry (E15's one-NACK-per-range discipline).
    Announce {
        /// The announcing transfer.
        xfer: XferId,
        /// Destination range on the receiving node.
        ann: DstAnnouncement,
    },
    /// One go-back-N delivery's worth of payload (at most a page, so a
    /// chunk never crosses a translation boundary).
    Data {
        /// The owning transfer.
        xfer: XferId,
        /// Chunk index within the transfer (resent chunks reuse it).
        chunk: u32,
        /// Destination address space on the receiving node.
        asid: Asid,
        /// Destination VA of this chunk.
        va: VirtAddr,
        /// The in-order payload prefix the link layer delivered.
        bytes: Vec<u8>,
        /// What the go-back-N engine saw on the wire for this chunk
        /// (retransmits, CRC drops, …) — folded into the receiver's
        /// link counters on arrival.
        outcome: DeliveryOutcome,
    },
    /// Cumulative ACK for a deposited chunk.
    Ack {
        /// The acked transfer.
        xfer: XferId,
        /// The acked chunk.
        chunk: u32,
        /// Bytes of the chunk the receiver deposited.
        accepted: u64,
    },
    /// Receive-side translation fault, NACKed back to the sender. The
    /// receiving node's OS has already run its fault service by the
    /// time the NACK departs; `resolvable` tells the sender whether a
    /// retry can succeed.
    Nack {
        /// The faulting transfer.
        xfer: XferId,
        /// The chunk whose deposit faulted (the sender must resend it).
        chunk: u32,
        /// The fault the receiving NI raised.
        fault: IoFault,
        /// Whether the receiver's fault service resolved it.
        resolvable: bool,
    },
    /// Broadcast by a node returning to service: after a reboot (with a
    /// freshly bumped incarnation) or an NI-hang ending (same
    /// incarnation). Moves the sender `Down → Recovering` and, when the
    /// incarnation advanced, fences every pre-crash frame.
    Hello {
        /// The announcing node's current incarnation epoch.
        inc: u64,
    },
    /// A health probe from a sender whose detector holds the
    /// destination `Down`; a live node answers with [`NetMsg::Pong`].
    Ping,
    /// A probe answer, carrying the responder's incarnation so the
    /// prober learns about reboots it slept through.
    Pong {
        /// The responding node's current incarnation epoch.
        inc: u64,
    },
}

impl NetMsg {
    /// Whether the message merges payload or transfer state on receipt
    /// (Data/Ack/Nack/Announce) as opposed to the epoch-establishing
    /// control plane (Hello/Ping/Pong). Only stateful messages are
    /// subject to incarnation fencing — control messages are how epochs
    /// are *learned*.
    pub fn stateful(&self) -> bool {
        !matches!(self, NetMsg::Hello { .. } | NetMsg::Ping | NetMsg::Pong { .. })
    }
}

/// A routed protocol message with the shard-layout-invariant ordering
/// key (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// The emitting node.
    pub src_node: u32,
    /// The node this message is addressed to.
    pub dst_node: u32,
    /// The emitting node's monotonic emission counter.
    pub seq: u64,
    /// The emitting node's incarnation epoch at emission time. A
    /// receiver fences stateful frames whose `src_inc` is older than an
    /// epoch it has already seen from that node.
    pub src_inc: u64,
    /// The destination incarnation the emitter believed in. A rebooted
    /// node fences stateful frames stamped with its pre-crash epoch —
    /// they were addressed to state that no longer exists.
    pub dst_inc: u64,
    /// The message.
    pub msg: NetMsg,
}

/// Terminal and in-flight states of a sender-side transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XferState {
    /// Posted; the first chunk has not launched yet.
    Pending,
    /// Chunks are crossing the wire.
    Streaming,
    /// Every byte deposited and acked.
    Complete,
    /// A NACK was unresolvable or the NACK retry budget ran dry.
    Failed,
    /// The link layer's retry budget ran dry mid-chunk (`DMA_LINK_FAILED`
    /// in the single-machine world); an in-order prefix may have landed.
    LinkFailed,
    /// The destination node failed (crash, hang, or lease expiry) —
    /// `DMA_NODE_DOWN` in the single-machine world. Exactly the
    /// in-order prefix acked before the failure was delivered, and if
    /// the node rebooted even that prefix died with its volatile state.
    NodeDown,
}

impl XferState {
    /// Whether the transfer reached a terminal state.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            XferState::Complete | XferState::Failed | XferState::LinkFailed | XferState::NodeDown
        )
    }
}

/// Wire/accounting counters of one sender-side transfer — the sharded
/// analogue of the single-machine `VirtStats` slice a transfer owns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XferCounters {
    /// Bytes that arrived in order at the destination (acked bytes plus
    /// the delivered prefix of a link-failed chunk).
    pub moved: u64,
    /// Data-frame retransmissions across all chunks.
    pub retransmits: u64,
    /// Bytes that crossed the wire, retransmissions included.
    pub wire_bytes: u64,
    /// NACKs this transfer's chunks drew.
    pub nacks: u64,
    /// Chunk launches (first sends plus NACK resends).
    pub launches: u64,
    /// Time lost to link-layer timeouts and backoff.
    pub stall: SimTime,
}

/// What the sender should do after a NACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NackVerdict {
    /// Resend the chunk at the given time (NACK backoff applied).
    Retry(SimTime),
    /// Give up: unresolvable fault or exhausted retry budget.
    Abort,
}

/// Sender-side state machine of one remote transfer: chunking, the
/// go-back-N launch step, ACK/NACK bookkeeping, and terminal-state
/// accounting. The shard that owns the posting node drives this.
#[derive(Clone, Debug)]
pub struct SendXfer {
    /// The transfer's cluster-wide id.
    pub id: XferId,
    /// Destination node.
    pub dst_node: u32,
    /// Destination address space on that node.
    pub dst_asid: Asid,
    /// Destination base VA.
    pub dst_va: VirtAddr,
    /// The payload.
    data: Vec<u8>,
    /// Bytes acked so far (the next chunk starts here).
    cursor: u64,
    /// Next chunk index (increments on ACK, not on resend).
    chunk: u32,
    /// Consecutive NACK retries of the current chunk.
    retries: u32,
    /// Whether the destination announcement still needs to ride ahead
    /// of the next launch (set at post time; set again when an epoch
    /// advance forces a replay into freshly rebooted state).
    announce_pending: bool,
    /// Current state.
    state: XferState,
    /// Posting time.
    pub posted_at: SimTime,
    /// Terminal-state time.
    pub finished: Option<SimTime>,
    /// Wire/accounting counters.
    pub counters: XferCounters,
}

impl SendXfer {
    /// A freshly posted transfer.
    pub fn new(
        id: XferId,
        dst_node: u32,
        dst_asid: Asid,
        dst_va: VirtAddr,
        data: Vec<u8>,
        posted_at: SimTime,
    ) -> Self {
        assert!(!data.is_empty(), "zero-byte transfers are rejected at post time");
        SendXfer {
            id,
            dst_node,
            dst_asid,
            dst_va,
            data,
            cursor: 0,
            chunk: 0,
            retries: 0,
            announce_pending: true,
            state: XferState::Pending,
            posted_at,
            finished: None,
            counters: XferCounters::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> XferState {
        self.state
    }

    /// Bytes acked so far — the delivered in-order prefix.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Takes the pending-announcement flag: `true` exactly once per
    /// (re)start of the transfer, before its next data launch.
    pub fn take_announce(&mut self) -> bool {
        std::mem::take(&mut self.announce_pending)
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Whether the payload is empty (never true — posts reject it).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole destination range, as announced ahead of the first
    /// chunk.
    pub fn announcement(&self) -> DstAnnouncement {
        DstAnnouncement { asid: self.dst_asid, va: self.dst_va, len: self.len() }
    }

    /// Destination VA and length of the next unacked chunk: up to the
    /// next page boundary, so one chunk needs exactly one translation.
    pub fn chunk_span(&self) -> (VirtAddr, u64) {
        let va = self.dst_va + self.cursor;
        let to_boundary = PAGE_SIZE - va.page_offset();
        (va, to_boundary.min(self.len() - self.cursor))
    }

    /// Launches the next unacked chunk at `now`: runs the go-back-N
    /// engine over the chaos link (if one is attached), folds the wire
    /// outcome into the counters, and returns the [`NetMsg::Data`] to
    /// put on the channel plus its arrival time. If the link layer's
    /// retry budget ran dry the transfer transitions to
    /// [`XferState::LinkFailed`] here and the message carries the
    /// delivered prefix.
    ///
    /// # Panics
    ///
    /// Panics if the transfer is already terminal or fully acked.
    pub fn launch_chunk(
        &mut self,
        now: SimTime,
        link: &LinkModel,
        rel: &ReliabilityConfig,
        chaos: Option<&mut FaultyLink>,
    ) -> (NetMsg, SimTime) {
        assert!(!self.state.terminal(), "launch on terminal transfer {}", self.id);
        assert!(self.cursor < self.len(), "launch with nothing left to send on {}", self.id);
        self.state = XferState::Streaming;
        let (va, len) = self.chunk_span();
        let payload = &self.data[self.cursor as usize..(self.cursor + len) as usize];
        let (outcome, bytes) = match chaos {
            Some(faulty) => deliver(link, rel, faulty, payload),
            None => {
                // An ideal wire: the whole chunk arrives after one
                // serialisation delay, nothing is resent.
                let outcome = DeliveryOutcome {
                    delivered: len,
                    elapsed: link.transfer_time(len),
                    wire_bytes: len,
                    frames_sent: len.div_ceil(rel.mtu.max(1)) as u32,
                    completed: true,
                    ..DeliveryOutcome::default()
                };
                (outcome, payload.to_vec())
            }
        };
        self.counters.launches += 1;
        self.counters.retransmits += u64::from(outcome.retransmits);
        self.counters.wire_bytes += outcome.wire_bytes;
        self.counters.stall += outcome.stall;
        let arrival = now + outcome.elapsed;
        if !outcome.completed {
            // The reliability layer gave up mid-chunk: terminal on the
            // sender's clock at the moment it stopped listening. The
            // in-order prefix still lands (and is counted) on arrival.
            self.state = XferState::LinkFailed;
            self.finished = Some(arrival);
            self.counters.moved = self.cursor + outcome.delivered;
        }
        let msg = NetMsg::Data {
            xfer: self.id,
            chunk: self.chunk,
            asid: self.dst_asid,
            va,
            bytes,
            outcome,
        };
        (msg, arrival)
    }

    /// Records a cumulative ACK arriving at `now`. Returns `true` when
    /// the transfer just completed. ACKs for stale chunks or terminal
    /// transfers (a link-failed chunk's prefix still gets acked) are
    /// ignored.
    pub fn on_ack(&mut self, chunk: u32, accepted: u64, now: SimTime) -> bool {
        if self.state != XferState::Streaming || chunk != self.chunk {
            return false;
        }
        self.cursor += accepted;
        self.counters.moved = self.cursor;
        self.chunk += 1;
        self.retries = 0;
        if self.cursor >= self.len() {
            self.state = XferState::Complete;
            self.finished = Some(now);
            return true;
        }
        false
    }

    /// Records a NACK arriving at `now` and decides the retry. An
    /// unresolvable fault or an exhausted budget fails the transfer
    /// here; otherwise the chunk resends after the policy's backoff.
    /// NACKs for terminal transfers are ignored (`Abort` without
    /// double-counting).
    pub fn on_nack(
        &mut self,
        chunk: u32,
        resolvable: bool,
        now: SimTime,
        policy: &RetryPolicy,
    ) -> NackVerdict {
        if self.state.terminal() || chunk != self.chunk {
            return NackVerdict::Abort;
        }
        self.counters.nacks += 1;
        if !resolvable {
            self.state = XferState::Failed;
            self.finished = Some(now);
            return NackVerdict::Abort;
        }
        self.retries += 1;
        if policy.exhausted(self.retries) {
            self.state = XferState::Failed;
            self.finished = Some(now);
            return NackVerdict::Abort;
        }
        NackVerdict::Retry(now + policy.backoff_after(self.retries))
    }

    /// Aborts the transfer because its destination node failed: the
    /// acked in-order prefix stands as `moved`, nothing else will ever
    /// arrive. Idempotent on terminal transfers.
    pub fn abort_node_down(&mut self, now: SimTime) -> bool {
        if self.state.terminal() {
            return false;
        }
        self.state = XferState::NodeDown;
        self.finished = Some(now);
        self.counters.moved = self.cursor;
        true
    }

    /// Restarts a transfer whose destination rebooted into a new
    /// incarnation before any byte was acked: back to `Pending`, the
    /// announcement rides again ahead of the next launch. Callers must
    /// only replay zero-progress transfers — a rebooted node wiped any
    /// delivered prefix, so a partially-acked transfer must
    /// [`abort_node_down`](Self::abort_node_down) instead of silently
    /// leaving a hole.
    ///
    /// # Panics
    ///
    /// Panics if any byte was already acked or the transfer is terminal.
    pub fn restart_for_new_epoch(&mut self) {
        assert!(!self.state.terminal(), "restart of a terminal transfer {}", self.id);
        assert_eq!(self.cursor, 0, "restart would tear the acked prefix of {}", self.id);
        self.chunk = 0;
        self.retries = 0;
        self.announce_pending = true;
        self.state = XferState::Pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::FaultPlan;

    fn xfer(bytes: u64) -> SendXfer {
        SendXfer::new(
            XferId { node: 0, index: 0 },
            1,
            7,
            VirtAddr::new(4 * PAGE_SIZE),
            vec![0xAB; bytes as usize],
            SimTime::ZERO,
        )
    }

    #[test]
    fn chunks_never_cross_page_boundaries() {
        let mut x = xfer(3 * PAGE_SIZE);
        // Unaligned start: first chunk stops at the boundary.
        x.dst_va = VirtAddr::new(4 * PAGE_SIZE + 0x100);
        let (va, len) = x.chunk_span();
        assert_eq!(va, VirtAddr::new(4 * PAGE_SIZE + 0x100));
        assert_eq!(len, PAGE_SIZE - 0x100);
        x.cursor = len;
        let (va2, len2) = x.chunk_span();
        assert_eq!(va2, VirtAddr::new(5 * PAGE_SIZE));
        assert_eq!(len2, PAGE_SIZE);
    }

    #[test]
    fn clean_wire_streams_to_completion() {
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        let mut x = xfer(2 * PAGE_SIZE);
        let mut now = SimTime::ZERO;
        let mut chunks = 0;
        while x.state() != XferState::Complete {
            let (msg, arrival) = x.launch_chunk(now, &link, &rel, None);
            let NetMsg::Data { chunk, bytes, outcome, .. } = msg else { panic!("data") };
            assert_eq!(outcome.retransmits, 0);
            assert_eq!(bytes.len() as u64, PAGE_SIZE);
            now = arrival + link.latency(); // the ACK's flight back
            x.on_ack(chunk, bytes.len() as u64, now);
            chunks += 1;
        }
        assert_eq!(chunks, 2);
        assert_eq!(x.counters.moved, 2 * PAGE_SIZE);
        assert_eq!(x.counters.retransmits, 0);
        assert_eq!(x.finished, Some(now));
    }

    #[test]
    fn nack_retries_are_bounded_by_the_policy() {
        let policy = RetryPolicy::new(2, SimTime::from_us(5));
        let mut x = xfer(PAGE_SIZE);
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        let (_, _) = x.launch_chunk(SimTime::ZERO, &link, &rel, None);
        let fault_nack = |x: &mut SendXfer, now| x.on_nack(0, true, now, &policy);
        let NackVerdict::Retry(at) = fault_nack(&mut x, SimTime::from_us(100)) else {
            panic!("first NACK retries")
        };
        assert!(at > SimTime::from_us(100), "backoff applies");
        assert_eq!(fault_nack(&mut x, at), NackVerdict::Abort, "budget of 2 exhausts");
        assert_eq!(x.state(), XferState::Failed);
        assert_eq!(x.counters.nacks, 2);
        // Further NACKs for the dead transfer change nothing.
        assert_eq!(fault_nack(&mut x, at), NackVerdict::Abort);
        assert_eq!(x.counters.nacks, 2);
    }

    #[test]
    fn unresolvable_nack_fails_immediately() {
        let policy = RetryPolicy::new(6, SimTime::from_us(5));
        let mut x = xfer(PAGE_SIZE);
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        x.launch_chunk(SimTime::ZERO, &link, &rel, None);
        assert_eq!(x.on_nack(0, false, SimTime::from_us(40), &policy), NackVerdict::Abort);
        assert_eq!(x.state(), XferState::Failed);
        assert_eq!(x.finished, Some(SimTime::from_us(40)));
    }

    #[test]
    fn chaos_exhaustion_is_link_failed_with_prefix_accounting() {
        let link = LinkModel::atm155();
        // A zero-retry budget under total loss dies on the first chunk.
        let rel = ReliabilityConfig {
            retry: RetryPolicy::new(0, SimTime::from_us(5)),
            ..ReliabilityConfig::default()
        };
        let mut chaos = FaultyLink::new(FaultPlan::lossless(9).with_drop(1.0));
        let mut x = xfer(PAGE_SIZE);
        let (msg, arrival) = x.launch_chunk(SimTime::ZERO, &link, &rel, Some(&mut chaos));
        let NetMsg::Data { outcome, .. } = msg else { panic!("data") };
        assert!(!outcome.completed);
        assert_eq!(x.state(), XferState::LinkFailed);
        assert_eq!(x.finished, Some(arrival));
        assert_eq!(x.counters.moved, outcome.delivered);
    }

    #[test]
    fn stale_acks_and_wrong_chunks_are_ignored() {
        let link = LinkModel::atm155();
        let rel = ReliabilityConfig::default();
        let mut x = xfer(2 * PAGE_SIZE);
        x.launch_chunk(SimTime::ZERO, &link, &rel, None);
        assert!(!x.on_ack(5, PAGE_SIZE, SimTime::from_us(1)), "wrong chunk index");
        assert_eq!(x.counters.moved, 0);
        assert!(!x.on_ack(0, PAGE_SIZE, SimTime::from_us(2)));
        assert_eq!(x.counters.moved, PAGE_SIZE);
        assert_eq!(x.state(), XferState::Streaming);
    }
}
