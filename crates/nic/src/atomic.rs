//! The atomic-operation unit (§3.5).
//!
//! NIC-resident atomic operations let processes on a NOW protect shared
//! data without a round trip through the kernel. Each operation takes one
//! physical address, up to two data operands, and returns the old value.

use udma_bus::SharedMemory;
use udma_mem::{MemFault, PhysAddr};

/// An atomic read-modify-write operation on a 64-bit word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// `*addr += operand1`; returns the old value.
    Add,
    /// `*addr = operand1`; returns the old value (`fetch_and_store`).
    FetchStore,
    /// `if *addr == operand1 { *addr = operand2 }`; returns the old value
    /// (`compare_and_swap`).
    CompareSwap,
}

impl AtomicOp {
    /// The command code written to the engine's atomic command register.
    pub fn code(self) -> u64 {
        match self {
            AtomicOp::Add => 1,
            AtomicOp::FetchStore => 2,
            AtomicOp::CompareSwap => 3,
        }
    }

    /// Decodes a command code.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(AtomicOp::Add),
            2 => Some(AtomicOp::FetchStore),
            3 => Some(AtomicOp::CompareSwap),
            _ => None,
        }
    }

    /// Applies the operation to memory, returning the old value.
    ///
    /// The engine executes this in a single step of the simulation, which
    /// models the hardware's indivisible bus cycle pair.
    ///
    /// # Errors
    ///
    /// Propagates the memory fault if the address is bad.
    pub fn apply(
        self,
        mem: &SharedMemory,
        addr: PhysAddr,
        operand1: u64,
        operand2: u64,
    ) -> Result<u64, MemFault> {
        let mut mem = mem.borrow_mut();
        let old = mem.read_u64(addr)?;
        let new = match self {
            AtomicOp::Add => old.wrapping_add(operand1),
            AtomicOp::FetchStore => operand1,
            AtomicOp::CompareSwap => {
                if old == operand1 {
                    operand2
                } else {
                    old
                }
            }
        };
        mem.write_u64(addr, new)?;
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::PhysMemory;

    fn mem_with(addr: u64, value: u64) -> SharedMemory {
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 16)));
        mem.borrow_mut().write_u64(PhysAddr::new(addr), value).unwrap();
        mem
    }

    #[test]
    fn add_returns_old_and_updates() {
        let mem = mem_with(0x100, 10);
        let old = AtomicOp::Add.apply(&mem, PhysAddr::new(0x100), 5, 0).unwrap();
        assert_eq!(old, 10);
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 15);
    }

    #[test]
    fn add_wraps() {
        let mem = mem_with(0x100, u64::MAX);
        AtomicOp::Add.apply(&mem, PhysAddr::new(0x100), 1, 0).unwrap();
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 0);
    }

    #[test]
    fn fetch_store_swaps() {
        let mem = mem_with(0x100, 7);
        let old = AtomicOp::FetchStore.apply(&mem, PhysAddr::new(0x100), 99, 0).unwrap();
        assert_eq!(old, 7);
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 99);
    }

    #[test]
    fn compare_swap_success_and_failure() {
        let mem = mem_with(0x100, 5);
        let old = AtomicOp::CompareSwap.apply(&mem, PhysAddr::new(0x100), 5, 50).unwrap();
        assert_eq!(old, 5);
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 50);

        let old = AtomicOp::CompareSwap.apply(&mem, PhysAddr::new(0x100), 5, 99).unwrap();
        assert_eq!(old, 50); // compare failed, unchanged
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 50);
    }

    #[test]
    fn code_round_trip() {
        for op in [AtomicOp::Add, AtomicOp::FetchStore, AtomicOp::CompareSwap] {
            assert_eq!(AtomicOp::from_code(op.code()), Some(op));
        }
        assert_eq!(AtomicOp::from_code(0), None);
        assert_eq!(AtomicOp::from_code(9), None);
    }

    #[test]
    fn bad_address_faults() {
        let mem = mem_with(0x100, 5);
        assert!(AtomicOp::Add.apply(&mem, PhysAddr::new(1 << 40), 1, 0).is_err());
        assert!(AtomicOp::Add.apply(&mem, PhysAddr::new(0x101), 1, 0).is_err());
    }
}
