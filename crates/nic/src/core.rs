//! The engine core: registers, contexts, key table, statistics, and the
//! services protocols build on.

use crate::regs::MAX_CONTEXTS;
use crate::{
    AtomicOp, Destination, DmaMover, Initiator, LinkModel, RegisterContext, RejectReason,
    SharedCluster, TransferRecord, DMA_FAILURE,
};
use std::collections::HashMap;
use udma_bus::{SharedMemory, SimTime};
use udma_mem::{PhysAddr, PhysFrame, PhysLayout};

/// Configuration of the DMA engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of register contexts (≤ [`MAX_CONTEXTS`]).
    pub num_contexts: u32,
    /// The outgoing link (times transfer completion).
    pub link: LinkModel,
    /// Extra device latency of a keyed shadow store (the FPGA compares
    /// the key against its table before acknowledging).
    pub key_check_latency: SimTime,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_contexts: 4,
            link: LinkModel::default(),
            key_check_latency: SimTime::from_ns(120),
        }
    }
}

/// Counters kept by the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transfers started (all paths).
    pub started: u64,
    /// Initiation attempts refused, by reason.
    pub rejects: HashMap<RejectReason, u64>,
    /// Keyed stores dropped for a key mismatch.
    pub key_mismatches: u64,
    /// Times a repeated-passing FSM reset on an out-of-order access.
    pub sequence_resets: u64,
    /// Atomic operations executed.
    pub atomics: u64,
}

impl EngineStats {
    /// Total rejected initiations.
    pub fn rejected(&self) -> u64 {
        self.rejects.values().sum()
    }

    /// Rejections for one reason.
    pub fn rejected_for(&self, reason: RejectReason) -> u64 {
        self.rejects.get(&reason).copied().unwrap_or(0)
    }
}

/// Shared engine state: everything below the protocol state machines.
#[derive(Clone, Debug)]
pub struct EngineCore {
    layout: PhysLayout,
    mem: SharedMemory,
    mover: DmaMover,
    contexts: Vec<RegisterContext>,
    key_table: Vec<u64>,
    stats: EngineStats,
    /// SHRIMP-1 mapped-out table: source frame → destination page base
    /// (local or on a remote node).
    mapped_out: HashMap<PhysFrame, Destination>,
    key_check_latency: SimTime,
    pending_extra: SimTime,
    // Kernel-path DMA registers (Figure 1).
    dma_source: u64,
    dma_dest: u64,
    dma_status: u64,
    // Kernel-path atomic registers.
    atomic_addr: u64,
    atomic_op1: u64,
    atomic_op2: u64,
    atomic_result: u64,
}

impl EngineCore {
    /// Creates the core over the machine's memory.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_contexts` exceeds [`MAX_CONTEXTS`] or is 0.
    pub fn new(layout: PhysLayout, mem: SharedMemory, config: EngineConfig) -> Self {
        assert!(
            (1..=MAX_CONTEXTS).contains(&config.num_contexts),
            "context count out of range"
        );
        EngineCore {
            layout,
            mem: mem.clone(),
            mover: DmaMover::new(mem, config.link),
            contexts: vec![RegisterContext::new(); config.num_contexts as usize],
            key_table: vec![0; config.num_contexts as usize],
            stats: EngineStats::default(),
            mapped_out: HashMap::new(),
            key_check_latency: config.key_check_latency,
            pending_extra: SimTime::ZERO,
            dma_source: 0,
            dma_dest: 0,
            dma_status: DMA_FAILURE,
            atomic_addr: 0,
            atomic_op1: 0,
            atomic_op2: 0,
            atomic_result: 0,
        }
    }

    /// The machine layout (protocols need the shadow arithmetic).
    pub fn layout(&self) -> &PhysLayout {
        &self.layout
    }

    /// Number of register contexts.
    pub fn num_contexts(&self) -> u32 {
        self.contexts.len() as u32
    }

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Counts a key mismatch (keyed protocol).
    pub fn note_key_mismatch(&mut self) {
        self.stats.key_mismatches += 1;
    }

    /// Counts a sequence reset (repeated-passing protocol).
    pub fn note_sequence_reset(&mut self) {
        self.stats.sequence_resets += 1;
    }

    /// Counts a rejected initiation.
    pub fn note_reject(&mut self, reason: RejectReason) {
        *self.stats.rejects.entry(reason).or_insert(0) += 1;
    }

    /// Charges the key-check latency to the current bus transaction.
    pub fn charge_key_check(&mut self) {
        self.pending_extra += self.key_check_latency;
    }

    /// Takes (and clears) extra latency accumulated by the last access.
    pub fn take_pending_extra(&mut self) -> SimTime {
        std::mem::take(&mut self.pending_extra)
    }

    /// The transfer history.
    pub fn mover(&self) -> &DmaMover {
        &self.mover
    }

    /// Clears transfer history (long benchmark runs).
    pub fn clear_transfer_records(&mut self) {
        self.mover.clear_records();
    }

    /// One register context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn context(&self, ctx: u32) -> &RegisterContext {
        &self.contexts[ctx as usize]
    }

    /// Mutable register context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn context_mut(&mut self, ctx: u32) -> &mut RegisterContext {
        &mut self.contexts[ctx as usize]
    }

    /// Whether `ctx` names an existing context.
    pub fn has_context(&self, ctx: u32) -> bool {
        (ctx as usize) < self.contexts.len()
    }

    /// Programs the key for `ctx` (privileged; the OS does this when it
    /// grants a context to a process).
    pub fn set_key(&mut self, ctx: u32, key: u64) {
        if let Some(slot) = self.key_table.get_mut(ctx as usize) {
            *slot = key;
        }
    }

    /// The programmed key for `ctx` (0 when out of range).
    pub fn key(&self, ctx: u32) -> u64 {
        self.key_table.get(ctx as usize).copied().unwrap_or(0)
    }

    /// Installs a SHRIMP-1 mapped-out destination for a source frame.
    pub fn set_mapped_out(&mut self, src: PhysFrame, dst_base: Destination) {
        self.mapped_out.insert(src, dst_base);
    }

    /// SHRIMP-1 lookup: the fixed destination for `src_frame`.
    pub fn mapped_out(&self, src_frame: PhysFrame) -> Option<Destination> {
        self.mapped_out.get(&src_frame).copied()
    }

    /// Attaches the remote cluster the link reaches.
    pub fn attach_cluster(&mut self, cluster: SharedCluster) {
        self.mover.attach_cluster(cluster);
    }

    /// Starts a user-level transfer into a remote node's memory.
    ///
    /// Returns the mover record index on success.
    pub fn start_user_dma_remote(
        &mut self,
        src: PhysAddr,
        node: u32,
        addr: PhysAddr,
        size: u64,
        initiator: Initiator,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        match self.mover.start_remote(src, node, addr, size, initiator, now) {
            Ok(_) => {
                self.stats.started += 1;
                Ok(self.mover.last_index().expect("just started"))
            }
            Err(reason) => {
                self.note_reject(reason);
                Err(reason)
            }
        }
    }

    /// Starts a user-level transfer (single-page rule enforced).
    ///
    /// Returns the mover record index on success.
    pub fn start_user_dma(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        size: u64,
        initiator: Initiator,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        match self.mover.start(src, dst, size, initiator, false, now) {
            Ok(_) => {
                self.stats.started += 1;
                Ok(self.mover.last_index().expect("just started"))
            }
            Err(reason) => {
                self.note_reject(reason);
                Err(reason)
            }
        }
    }

    // ---- privileged (kernel-path) registers -------------------------

    /// Write to `DMA_SOURCE`.
    pub fn set_dma_source(&mut self, pa: u64) {
        self.dma_source = pa;
    }

    /// Write to `DMA_DEST`.
    pub fn set_dma_dest(&mut self, pa: u64) {
        self.dma_dest = pa;
    }

    /// Write to `DMA_SIZE`: starts a kernel-level DMA with the staged
    /// source/destination. The kernel has already validated the whole
    /// range, so multi-page transfers are allowed.
    pub fn start_kernel_dma(&mut self, size: u64, now: SimTime) {
        let r = self.mover.start(
            PhysAddr::new(self.dma_source),
            PhysAddr::new(self.dma_dest),
            size,
            Initiator::Kernel,
            true,
            now,
        );
        match r {
            Ok(rec) => {
                self.stats.started += 1;
                self.dma_status = rec.size;
            }
            Err(reason) => {
                self.note_reject(reason);
                self.dma_status = DMA_FAILURE;
            }
        }
    }

    /// Read of `DMA_STATUS`: bytes remaining of the last kernel DMA
    /// (`-1` = failed, 0 = complete).
    pub fn kernel_dma_status(&self, now: SimTime) -> u64 {
        if self.dma_status == DMA_FAILURE {
            return DMA_FAILURE;
        }
        self.mover
            .records()
            .iter()
            .rev()
            .find(|r| r.initiator == Initiator::Kernel)
            .map(|r| r.remaining_at(now))
            .unwrap_or(DMA_FAILURE)
    }

    /// Kernel-path atomic registers.
    pub fn set_atomic_addr(&mut self, pa: u64) {
        self.atomic_addr = pa;
    }

    /// Stages the first kernel-path atomic operand.
    pub fn set_atomic_op1(&mut self, v: u64) {
        self.atomic_op1 = v;
    }

    /// Stages the second kernel-path atomic operand.
    pub fn set_atomic_op2(&mut self, v: u64) {
        self.atomic_op2 = v;
    }

    /// Write to `ATOMIC_CMD`: executes the staged kernel-path atomic.
    pub fn exec_kernel_atomic(&mut self, code: u64) {
        self.atomic_result = match AtomicOp::from_code(code) {
            Some(op) => self
                .exec_atomic(op, PhysAddr::new(self.atomic_addr), self.atomic_op1, self.atomic_op2)
                .unwrap_or(DMA_FAILURE),
            None => DMA_FAILURE,
        };
    }

    /// Read of `ATOMIC_CMD`: result of the last kernel-path atomic.
    pub fn kernel_atomic_result(&self) -> u64 {
        self.atomic_result
    }

    /// Executes an atomic operation against memory (shared by the kernel
    /// path and the user-level context paths).
    pub fn exec_atomic(
        &mut self,
        op: AtomicOp,
        addr: PhysAddr,
        op1: u64,
        op2: u64,
    ) -> Option<u64> {
        match op.apply(&self.mem, addr, op1, op2) {
            Ok(old) => {
                self.stats.atomics += 1;
                Some(old)
            }
            Err(_) => {
                self.note_reject(RejectReason::BadRange);
                None
            }
        }
    }

    /// The transfer record a context's status load refers to.
    pub fn context_transfer(&self, ctx: u32) -> Option<&TransferRecord> {
        self.contexts
            .get(ctx as usize)
            .and_then(|c| c.last_transfer())
            .and_then(|i| self.mover.record(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysMemory, PAGE_SIZE};

    fn core() -> EngineCore {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        EngineCore::new(layout, mem, EngineConfig::default())
    }

    #[test]
    fn kernel_dma_round_trip() {
        let mut c = core();
        c.set_dma_source(0x2000);
        c.set_dma_dest(0x6000);
        c.start_kernel_dma(256, SimTime::ZERO);
        assert_eq!(c.stats().started, 1);
        // Far in the future the transfer is complete.
        assert_eq!(c.kernel_dma_status(SimTime::from_us(10_000)), 0);
    }

    #[test]
    fn kernel_dma_failure_status() {
        let mut c = core();
        c.set_dma_source(0x2000);
        c.set_dma_dest(0x6000);
        c.start_kernel_dma(0, SimTime::ZERO);
        assert_eq!(c.kernel_dma_status(SimTime::ZERO), DMA_FAILURE);
        assert_eq!(c.stats().rejected_for(RejectReason::ZeroSize), 1);
    }

    #[test]
    fn user_dma_rejects_page_cross() {
        let mut c = core();
        let src = PhysAddr::new(PAGE_SIZE - 8);
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        let err = c
            .start_user_dma(src, dst, 64, Initiator::Anonymous, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, RejectReason::PageCross);
        assert_eq!(c.stats().rejected(), 1);
    }

    #[test]
    fn keys_and_contexts() {
        let mut c = core();
        assert_eq!(c.num_contexts(), 4);
        c.set_key(2, 0xDEAD);
        assert_eq!(c.key(2), 0xDEAD);
        assert_eq!(c.key(0), 0);
        assert!(c.has_context(3));
        assert!(!c.has_context(4));
        // Out-of-range key writes are ignored, reads return 0.
        c.set_key(99, 1);
        assert_eq!(c.key(99), 0);
    }

    #[test]
    fn kernel_atomic_path() {
        let mut c = core();
        c.mem.borrow_mut().write_u64(PhysAddr::new(0x100), 40).unwrap();
        c.set_atomic_addr(0x100);
        c.set_atomic_op1(2);
        c.exec_kernel_atomic(AtomicOp::Add.code());
        assert_eq!(c.kernel_atomic_result(), 40);
        assert_eq!(c.mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 42);
        assert_eq!(c.stats().atomics, 1);

        c.exec_kernel_atomic(99);
        assert_eq!(c.kernel_atomic_result(), DMA_FAILURE);
    }

    #[test]
    fn mapped_out_table() {
        let mut c = core();
        c.set_mapped_out(PhysFrame::new(3), Destination::Local(PhysAddr::new(0x8000)));
        assert_eq!(
            c.mapped_out(PhysFrame::new(3)),
            Some(Destination::Local(PhysAddr::new(0x8000)))
        );
        assert_eq!(c.mapped_out(PhysFrame::new(4)), None);
    }

    #[test]
    fn remote_user_dma_deposits_on_the_node() {
        let mut c = core();
        let cluster = crate::Cluster::new(2, 1 << 16).shared();
        c.attach_cluster(cluster.clone());
        c.mem.borrow_mut().write_u64(PhysAddr::new(0x2000), 0x77).unwrap();
        let idx = c
            .start_user_dma_remote(
                PhysAddr::new(0x2000),
                1,
                PhysAddr::new(0x400),
                8,
                Initiator::Anonymous,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(cluster.borrow().read_u64(1, PhysAddr::new(0x400)).unwrap(), 0x77);
        let rec = c.mover().record(idx).unwrap();
        assert_eq!(rec.remote_node, Some(1));
        assert_eq!(
            rec.destination(),
            Destination::Remote { node: 1, addr: PhysAddr::new(0x400) }
        );
    }

    #[test]
    fn remote_dma_without_cluster_is_rejected() {
        let mut c = core();
        let err = c
            .start_user_dma_remote(
                PhysAddr::new(0x2000),
                0,
                PhysAddr::new(0),
                8,
                Initiator::Anonymous,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, RejectReason::BadRange);
    }

    #[test]
    fn pending_extra_latency_accumulates_and_clears() {
        let mut c = core();
        assert_eq!(c.take_pending_extra(), SimTime::ZERO);
        c.charge_key_check();
        c.charge_key_check();
        assert_eq!(c.take_pending_extra(), SimTime::from_ns(240));
        assert_eq!(c.take_pending_extra(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "context count")]
    fn too_many_contexts_panics() {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 20)));
        let _ = EngineCore::new(
            layout,
            mem,
            EngineConfig { num_contexts: 9, ..Default::default() },
        );
    }
}
