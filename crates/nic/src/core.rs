//! The engine core: registers, contexts, key table, statistics, and the
//! services protocols build on.

use crate::descring::{
    DescDst, DescRing, DmaDescriptor, RingConfig, RingImage, RingLaunch, RingStats,
    DESC_FLAG_CHAIN, DESC_FLAG_FRAG, DESC_WORDS,
};
use crate::faulty::{ControlFate, FaultPlan, FaultyLinkStats, ReliabilityConfig};
use crate::health::{HealthConfig, HealthState, PeerHealth};
use crate::regs::{self, MAX_CONTEXTS};
use crate::virt::{
    PendingFault, RemoteVaTarget, VirtDmaConfig, VirtStage, VirtState, VirtStats, VirtTransfer,
};
use crate::{
    AtomicOp, CtxBusy, CtxImage, CtxStats, Destination, DmaMover, DstAnnouncement, Initiator,
    LinkModel, RegisterContext, RejectReason, RemoteDst, SharedCluster, TransferRecord,
    DMA_FAILURE, DMA_LINK_FAILED, DMA_NODE_DOWN,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use udma_bus::{SharedMemory, SimTime};
use udma_iommu::{Asid, IoFault, IoFaultKind, Iommu, IotlbConfig};
use udma_mem::{Access, PhysAddr, PhysFrame, PhysLayout, VirtAddr, PAGE_SIZE};

/// Physical destination of a checked launch: memory on this node, or
/// a `(node, addr)` pair on a remote peer.
#[derive(Clone, Copy, Debug)]
pub enum LaunchDst {
    /// Same-node physical memory.
    Local(PhysAddr),
    /// A remote peer's physical memory.
    Remote(RemoteDst),
}

/// Configuration of the DMA engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of register contexts (≤ [`MAX_CONTEXTS`]).
    pub num_contexts: u32,
    /// The outgoing link (times transfer completion).
    pub link: LinkModel,
    /// Extra device latency of a keyed shadow store (the FPGA compares
    /// the key against its table before acknowledging).
    pub key_check_latency: SimTime,
    /// Link-reliability tunables (go-back-N framing, watchdog deadline,
    /// circuit breaker). Only consulted once a chaos plan is attached;
    /// the watchdog and breaker guard remote transfers either way.
    pub reliability: ReliabilityConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_contexts: 4,
            link: LinkModel::default(),
            key_check_latency: SimTime::from_ns(120),
            reliability: ReliabilityConfig::default(),
        }
    }
}

/// Counters kept by the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transfers started (all paths).
    pub started: u64,
    /// Initiation attempts refused, by reason.
    pub rejects: HashMap<RejectReason, u64>,
    /// Keyed stores dropped for a key mismatch.
    pub key_mismatches: u64,
    /// Times a repeated-passing FSM reset on an out-of-order access.
    pub sequence_resets: u64,
    /// Atomic operations executed.
    pub atomics: u64,
}

impl EngineStats {
    /// Total rejected initiations.
    pub fn rejected(&self) -> u64 {
        self.rejects.values().sum()
    }

    /// Rejections for one reason.
    pub fn rejected_for(&self, reason: RejectReason) -> u64 {
        self.rejects.get(&reason).copied().unwrap_or(0)
    }
}

/// Shared engine state: everything below the protocol state machines.
#[derive(Clone, Debug)]
pub struct EngineCore {
    layout: PhysLayout,
    mem: SharedMemory,
    mover: DmaMover,
    contexts: Vec<RegisterContext>,
    key_table: Vec<u64>,
    stats: EngineStats,
    /// SHRIMP-1 mapped-out table: source frame → destination page base
    /// (local or on a remote node).
    mapped_out: HashMap<PhysFrame, Destination>,
    key_check_latency: SimTime,
    pending_extra: SimTime,
    // Kernel-path DMA registers (Figure 1).
    dma_source: u64,
    dma_dest: u64,
    dma_status: u64,
    // Kernel-path atomic registers.
    atomic_addr: u64,
    atomic_op1: u64,
    atomic_op2: u64,
    atomic_result: u64,
    // Virtual-address DMA unit (present when the engine has an IOMMU).
    iommu: Option<Iommu>,
    virt_config: VirtDmaConfig,
    virt_xfers: Vec<VirtTransfer>,
    /// Per-transfer prewalk window end: the byte offset (from the
    /// transfer's start) up to which the prefetcher has already issued
    /// walks. Refilled when the cursor catches up; reset to the cursor
    /// on resume so a serviced fault re-primes the window.
    virt_prefetch: Vec<u64>,
    virt_faults: VecDeque<PendingFault>,
    virt_stage: Vec<VirtStage>,
    virt_stats: VirtStats,
    ctx_stats: CtxStats,
    // Link reliability: watchdog deadline + circuit breaker.
    reliability: ReliabilityConfig,
    /// Consecutive link-failed remote transfers (reset by a remote
    /// completion or a repair).
    link_failures_row: u32,
    /// Circuit breaker: remote posts fail fast while tripped.
    link_down: bool,
    // Node fault domain: per-destination failure detector.
    health: HealthConfig,
    /// One detector per destination node (`BTreeMap` so iteration — and
    /// therefore every derived digest — is deterministic).
    peer_health: BTreeMap<u32, PeerHealth>,
    // Doorbell-batched descriptor rings (present once enabled).
    ring_config: Option<RingConfig>,
    rings: Vec<DescRing>,
    ring_stats: RingStats,
}

impl EngineCore {
    /// Creates the core over the machine's memory.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_contexts` exceeds [`MAX_CONTEXTS`] or is 0.
    pub fn new(layout: PhysLayout, mem: SharedMemory, config: EngineConfig) -> Self {
        assert!((1..=MAX_CONTEXTS).contains(&config.num_contexts), "context count out of range");
        let mut mover = DmaMover::new(mem.clone(), config.link);
        mover.set_reliability(config.reliability);
        EngineCore {
            layout,
            mem,
            mover,
            contexts: vec![RegisterContext::new(); config.num_contexts as usize],
            key_table: vec![0; config.num_contexts as usize],
            stats: EngineStats::default(),
            mapped_out: HashMap::new(),
            key_check_latency: config.key_check_latency,
            pending_extra: SimTime::ZERO,
            dma_source: 0,
            dma_dest: 0,
            dma_status: DMA_FAILURE,
            atomic_addr: 0,
            atomic_op1: 0,
            atomic_op2: 0,
            atomic_result: 0,
            iommu: None,
            virt_config: VirtDmaConfig::default(),
            virt_xfers: Vec::new(),
            virt_prefetch: Vec::new(),
            virt_faults: VecDeque::new(),
            virt_stage: vec![VirtStage::default(); config.num_contexts as usize],
            virt_stats: VirtStats::default(),
            ctx_stats: CtxStats::default(),
            reliability: config.reliability,
            link_failures_row: 0,
            link_down: false,
            health: HealthConfig::from_reliability(&config.reliability),
            peer_health: BTreeMap::new(),
            ring_config: None,
            rings: vec![DescRing::default(); config.num_contexts as usize],
            ring_stats: RingStats::default(),
        }
    }

    /// The machine layout (protocols need the shadow arithmetic).
    pub fn layout(&self) -> &PhysLayout {
        &self.layout
    }

    /// Number of register contexts.
    pub fn num_contexts(&self) -> u32 {
        self.contexts.len() as u32
    }

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Counts a key mismatch (keyed protocol).
    pub fn note_key_mismatch(&mut self) {
        self.stats.key_mismatches += 1;
    }

    /// Counts a sequence reset (repeated-passing protocol).
    pub fn note_sequence_reset(&mut self) {
        self.stats.sequence_resets += 1;
    }

    /// Counts a rejected initiation.
    pub fn note_reject(&mut self, reason: RejectReason) {
        *self.stats.rejects.entry(reason).or_insert(0) += 1;
    }

    /// Charges the key-check latency to the current bus transaction.
    pub fn charge_key_check(&mut self) {
        self.pending_extra += self.key_check_latency;
    }

    /// Takes (and clears) extra latency accumulated by the last access.
    pub fn take_pending_extra(&mut self) -> SimTime {
        std::mem::take(&mut self.pending_extra)
    }

    /// The transfer history.
    pub fn mover(&self) -> &DmaMover {
        &self.mover
    }

    /// Clears transfer history (long benchmark runs).
    pub fn clear_transfer_records(&mut self) {
        self.mover.clear_records();
    }

    /// One register context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn context(&self, ctx: u32) -> &RegisterContext {
        &self.contexts[ctx as usize]
    }

    /// Mutable register context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn context_mut(&mut self, ctx: u32) -> &mut RegisterContext {
        &mut self.contexts[ctx as usize]
    }

    /// Whether `ctx` names an existing context.
    pub fn has_context(&self, ctx: u32) -> bool {
        (ctx as usize) < self.contexts.len()
    }

    /// Programs the key for `ctx` (privileged; the OS does this when it
    /// grants a context to a process).
    pub fn set_key(&mut self, ctx: u32, key: u64) {
        if let Some(slot) = self.key_table.get_mut(ctx as usize) {
            *slot = key;
        }
    }

    /// The programmed key for `ctx` (0 when out of range).
    pub fn key(&self, ctx: u32) -> u64 {
        self.key_table.get(ctx as usize).copied().unwrap_or(0)
    }

    // ---- context virtualization (OS spill/fill hooks) ----------------

    /// Context-virtualization counters (spills, fills, steals, busy
    /// denials, starvations).
    pub fn ctx_stats(&self) -> CtxStats {
        self.ctx_stats
    }

    /// Whether `ctx` still has a transfer it can observe on the wire:
    /// its last physical transfer has bytes remaining at `now`, or its
    /// last virtual-address transfer is running, faulted, or draining.
    /// A busy context must not be spilled — the DMA engine's streaming
    /// state (cursor, chunk registers) cannot be checkpointed mid-burst,
    /// and a faulted VA transfer still owns its resume path.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn context_busy(&self, ctx: u32, now: SimTime) -> bool {
        if let Some(idx) = self.contexts[ctx as usize].last_transfer() {
            if let Some(rec) = self.mover.record(idx) {
                if rec.remaining_at(now) > 0 {
                    return true;
                }
            }
        }
        if let Some(id) = self.virt_stage[ctx as usize].last {
            if let Some(x) = self.virt_xfers.get(id) {
                if virt_xfer_pins(x, now) {
                    return true;
                }
            }
        }
        self.ring_pending(ctx, now)
    }

    /// Whether `ctx`'s descriptor ring has queued or live work at
    /// `now`: descriptors posted but not yet doorbelled, a dequeued
    /// batch whose fetch-staggered launches have not all fired, or a
    /// ring-launched transfer (physical or virtual) still observable on
    /// the wire. Queued work makes the context unstealable exactly like
    /// a busy register file — the ring's contents belong to the process
    /// whose ASID the dequeue will translate under.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn ring_pending(&self, ctx: u32, now: SimTime) -> bool {
        let r = &self.rings[ctx as usize];
        if !r.registered() {
            return false;
        }
        if r.pending() > 0 || now < r.drain_until {
            return true;
        }
        if r.live_phys
            .iter()
            .any(|&i| self.mover.record(i).is_some_and(|rec| rec.remaining_at(now) > 0))
        {
            return true;
        }
        r.live_virt
            .iter()
            .any(|&id| self.virt_xfers.get(id).is_some_and(|x| virt_xfer_pins(x, now)))
    }

    /// Spills `ctx` into an OS-held [`CtxImage`]: snapshots the key, the
    /// register file and the `CTX_VIRT_*` staging window, then clears
    /// the slot (key 0 = unprogrammed, so a stale keyed store from the
    /// evicted process misses and is dropped — the §3.1 protection
    /// argument keeps holding across steals).
    ///
    /// # Errors
    ///
    /// [`CtxBusy`] when the context can still observe an in-flight
    /// transfer ([`Self::context_busy`]); the denial is counted.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn save_context(&mut self, ctx: u32, now: SimTime) -> Result<CtxImage, CtxBusy> {
        if self.context_busy(ctx, now) {
            self.ctx_stats.busy_denials += 1;
            let phys_busy = self.contexts[ctx as usize]
                .last_transfer()
                .and_then(|i| self.mover.record(i))
                .is_some_and(|r| r.remaining_at(now) > 0);
            let virt_busy = self.virt_stage[ctx as usize]
                .last
                .is_some_and(|id| self.virt_xfers.get(id).is_some_and(|x| virt_xfer_pins(x, now)));
            // Ring work takes precedence: a ring-launched transfer also
            // registers as the context's last (virt) transfer, but the
            // ring is the root cause the OS must wait out.
            return Err(if self.ring_pending(ctx, now) {
                CtxBusy::RingPending
            } else if phys_busy {
                CtxBusy::Transfer
            } else if virt_busy {
                CtxBusy::VirtTransfer
            } else {
                CtxBusy::RingPending
            });
        }
        let i = ctx as usize;
        let ring = self.rings[i].registered().then(|| RingImage {
            base: self.rings[i].base.as_u64(),
            capacity: self.rings[i].capacity,
            cursor: self.rings[i].head,
        });
        let image = CtxImage {
            key: self.key_table[i],
            regs: self.contexts[i],
            virt: self.virt_stage[i],
            ring,
        };
        self.key_table[i] = 0;
        self.contexts[i] = RegisterContext::new();
        self.virt_stage[i] = VirtStage::default();
        // Deregister the ring with the slot: a stale doorbell from the
        // evicted process must find nothing to dequeue, the same way its
        // stale keyed stores miss the scrubbed key.
        self.rings[i] = DescRing::default();
        self.ctx_stats.spills += 1;
        Ok(image)
    }

    /// Refills `ctx` from a spilled [`CtxImage`] (key table, register
    /// file, `CTX_VIRT_*` window). The inverse of
    /// [`Self::save_context`]: a spilled-then-refilled context is
    /// observationally identical to one that was never evicted.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn restore_context(&mut self, ctx: u32, image: &CtxImage) {
        let i = ctx as usize;
        assert!(i < self.contexts.len(), "context out of range");
        self.key_table[i] = image.key;
        self.contexts[i] = image.regs;
        self.virt_stage[i] = image.virt;
        self.rings[i] = match image.ring {
            None => DescRing::default(),
            Some(ri) => DescRing {
                base: PhysAddr::new(ri.base),
                capacity: ri.capacity,
                head: ri.cursor,
                posted: ri.cursor,
                consumed: vec![false; ri.capacity as usize],
                ..DescRing::default()
            },
        };
        self.ctx_stats.fills += 1;
    }

    /// Counts a context steal (the OS evicted a live process; spills of
    /// exiting processes are not steals).
    pub fn note_ctx_steal(&mut self) {
        self.ctx_stats.steals += 1;
    }

    /// Counts a starved acquisition (no admissible victim; the caller
    /// fell back to the kernel DMA path).
    pub fn note_ctx_starvation(&mut self) {
        self.ctx_stats.starvations += 1;
    }

    /// Installs a SHRIMP-1 mapped-out destination for a source frame.
    pub fn set_mapped_out(&mut self, src: PhysFrame, dst_base: Destination) {
        self.mapped_out.insert(src, dst_base);
    }

    /// SHRIMP-1 lookup: the fixed destination for `src_frame`.
    pub fn mapped_out(&self, src_frame: PhysFrame) -> Option<Destination> {
        self.mapped_out.get(&src_frame).copied()
    }

    /// Attaches the remote cluster the link reaches.
    pub fn attach_cluster(&mut self, cluster: SharedCluster) {
        self.mover.attach_cluster(cluster);
    }

    /// Makes the engine a snooping (coherent) bus master on the host's
    /// coherence domain: every DMA read/write from now on snoops the
    /// CPU caches (see [`DmaMover::attach_coherence`]).
    pub fn attach_coherence(&mut self, coherence: udma_bus::SharedCoherence) {
        self.mover.attach_coherence(coherence);
    }

    /// Whether the engine snoops the coherence bus.
    pub fn is_coherent(&self) -> bool {
        self.mover.is_coherent()
    }

    // ---- link reliability -------------------------------------------

    /// Wraps the cluster link in seeded chaos: every remote transfer
    /// from now on is carried by the go-back-N reliability protocol
    /// across the faults `plan` scripts.
    pub fn attach_link_chaos(&mut self, plan: FaultPlan) {
        self.mover.attach_chaos(plan);
    }

    /// Everything the chaos link has done, if one is attached.
    pub fn link_chaos_stats(&self) -> Option<FaultyLinkStats> {
        self.mover.chaos_stats()
    }

    /// The reliability tunables in force.
    pub fn reliability(&self) -> ReliabilityConfig {
        self.reliability
    }

    /// Whether the remote path is circuit-broken.
    pub fn link_down(&self) -> bool {
        self.link_down
    }

    /// Consecutive link-failed remote transfers so far (the breaker
    /// trips at [`ReliabilityConfig::breaker_threshold`]).
    pub fn link_failures_row(&self) -> u32 {
        self.link_failures_row
    }

    /// Clears the circuit breaker: remote posts are accepted again.
    /// This is the OS-level repair action after the operator (or a
    /// probe) decided the link is healthy.
    pub fn link_repair(&mut self) {
        self.link_down = false;
        self.link_failures_row = 0;
    }

    /// Books one link-failed abort: trips the breaker after
    /// `breaker_threshold` consecutive failures.
    fn note_link_failure(&mut self) {
        self.link_failures_row += 1;
        if self.link_failures_row >= self.reliability.breaker_threshold {
            self.link_down = true;
        }
    }

    /// Aborts every non-terminal *remote* transfer that has made no
    /// byte progress within the watchdog deadline: its state becomes
    /// [`VirtState::LinkFailed`] (status loads return
    /// [`DMA_LINK_FAILED`]), with exactly the contiguous in-order
    /// prefix delivered. Returns the aborted transfer ids. Local
    /// transfers are never watched — they cannot lose frames.
    pub fn link_watchdog(&mut self, now: SimTime) -> Vec<usize> {
        let deadline = self.reliability.watchdog;
        let mut aborted = Vec::new();
        for id in 0..self.virt_xfers.len() {
            let t = self.virt_xfers[id];
            if t.remote.is_none() || t.is_terminal() {
                continue;
            }
            if now.saturating_sub(t.last_progress) > deadline {
                // Attribute the stall correctly: a silent *node* is a
                // node failure, not a link failure — the breaker must
                // not trip for a peer that merely crashed.
                let rt = t.remote.expect("filtered above");
                let node_dead =
                    self.mover.cluster().is_some_and(|c| !c.borrow().node_responsive(rt.node));
                let x = &mut self.virt_xfers[id];
                if node_dead {
                    x.state = VirtState::NodeDown;
                    x.finished = Some(x.clock.max(now));
                    self.virt_stats.node_down += 1;
                    self.peer_health.entry(rt.node).or_default().on_deadline(now);
                } else {
                    x.state = VirtState::LinkFailed;
                    x.finished = Some(x.clock.max(now));
                    self.virt_stats.link_failed += 1;
                    self.note_link_failure();
                }
                self.retire_announcement(id);
                aborted.push(id);
            }
        }
        aborted
    }

    // ---- node fault domain ------------------------------------------

    /// The failure-detector tunables in force (derived from
    /// [`ReliabilityConfig`] at construction).
    pub fn health_config(&self) -> HealthConfig {
        self.health
    }

    /// This sender's health verdict on destination `node`. Nodes never
    /// sent to are trivially `Up`.
    pub fn node_health(&self, node: u32) -> HealthState {
        self.peer_health.get(&node).map_or(HealthState::Up, |p| p.state())
    }

    /// The full per-destination detector, if one exists.
    pub fn peer_health(&self, node: u32) -> Option<&PeerHealth> {
        self.peer_health.get(&node)
    }

    /// Detector counters summed over every destination.
    pub fn health_stats(&self) -> crate::HealthStats {
        let mut total = crate::HealthStats::default();
        for p in self.peer_health.values() {
            total.absorb(&p.stats);
        }
        total
    }

    /// Node-level watchdog: aborts every non-terminal remote transfer
    /// whose destination is unresponsive and whose last byte progress
    /// is older than the ACK lease. Aborted transfers read
    /// [`DMA_NODE_DOWN`] and keep exactly their delivered in-order
    /// prefix; the destination's detector goes straight to
    /// [`HealthState::Down`]. Returns the aborted ids.
    pub fn node_watchdog(&mut self, now: SimTime) -> Vec<usize> {
        let lease = self.health.lease;
        let mut aborted = Vec::new();
        for id in 0..self.virt_xfers.len() {
            let t = self.virt_xfers[id];
            let Some(rt) = t.remote else { continue };
            if t.is_terminal() {
                continue;
            }
            let node_dead =
                self.mover.cluster().is_some_and(|c| !c.borrow().node_responsive(rt.node));
            if node_dead && now.saturating_sub(t.last_progress) > lease {
                let x = &mut self.virt_xfers[id];
                x.state = VirtState::NodeDown;
                x.finished = Some(x.clock.max(now));
                self.virt_stats.node_down += 1;
                self.peer_health.entry(rt.node).or_default().on_deadline(now);
                self.retire_announcement(id);
                aborted.push(id);
            }
        }
        aborted
    }

    /// Probes destination `node` (the OS-level Ping after the detector
    /// tripped): if the node answers, its current incarnation is
    /// learned — `Down → Recovering` — and a `true` second element
    /// reports that the epoch *advanced*, i.e. the peer rebooted and
    /// every pre-crash receive window there is gone.
    pub fn probe_node(&mut self, node: u32, _now: SimTime) -> (HealthState, bool) {
        let answer = self.mover.cluster().and_then(|c| {
            let cl = c.borrow();
            cl.node_responsive(node).then(|| cl.node_incarnation(node))
        });
        let ph = self.peer_health.entry(node).or_default();
        ph.stats.probes += 1;
        match answer {
            Some(inc) => {
                let advanced = ph.on_alive(inc);
                (ph.state(), advanced)
            }
            None => (ph.state(), false),
        }
    }

    /// The one checked launch sequence every initiation path funnels
    /// through: validates via the mover (zero-size, page-cross, range),
    /// books the started/rejected statistics exactly once, and returns
    /// the mover record index. The register paths, the kernel driver,
    /// the virtual-address chunk stream and the descriptor-ring dequeue
    /// all end here instead of keeping their own near-copies.
    pub fn launch_checked(
        &mut self,
        src: PhysAddr,
        dst: LaunchDst,
        size: u64,
        initiator: Initiator,
        multipage_ok: bool,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        let started = match dst {
            LaunchDst::Remote(rd) => {
                self.mover.start_remote(src, rd, size, initiator, multipage_ok, now)
            }
            LaunchDst::Local(dst) => self.mover.start(src, dst, size, initiator, multipage_ok, now),
        };
        match started {
            Ok(_) => {
                self.stats.started += 1;
                Ok(self.mover.last_index().expect("just started"))
            }
            Err(reason) => {
                self.note_reject(reason);
                Err(reason)
            }
        }
    }

    /// Starts a user-level transfer into a remote node's memory.
    ///
    /// Returns the mover record index on success.
    pub fn start_user_dma_remote(
        &mut self,
        src: PhysAddr,
        node: u32,
        addr: PhysAddr,
        size: u64,
        initiator: Initiator,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        if self.link_down {
            self.note_reject(RejectReason::LinkDown);
            return Err(RejectReason::LinkDown);
        }
        self.launch_checked(
            src,
            LaunchDst::Remote(RemoteDst { node, addr }),
            size,
            initiator,
            false,
            now,
        )
    }

    /// Starts a user-level transfer (single-page rule enforced).
    ///
    /// Returns the mover record index on success.
    pub fn start_user_dma(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        size: u64,
        initiator: Initiator,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        self.launch_checked(src, LaunchDst::Local(dst), size, initiator, false, now)
    }

    /// Starts a kernel-validated transfer directly (multi-page allowed,
    /// [`Initiator::Kernel`]) without staging the privileged
    /// `DMA_SOURCE`/`DMA_DEST` registers — the programmatic twin of
    /// [`start_kernel_dma`](Self::start_kernel_dma) for callers that
    /// want the record index and the reject reason.
    pub fn start_kernel_dma_direct(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        size: u64,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        self.launch_checked(src, LaunchDst::Local(dst), size, Initiator::Kernel, true, now)
    }

    // ---- privileged (kernel-path) registers -------------------------

    /// Write to `DMA_SOURCE`.
    pub fn set_dma_source(&mut self, pa: u64) {
        self.dma_source = pa;
    }

    /// Write to `DMA_DEST`.
    pub fn set_dma_dest(&mut self, pa: u64) {
        self.dma_dest = pa;
    }

    /// Write to `DMA_SIZE`: starts a kernel-level DMA with the staged
    /// source/destination. The kernel has already validated the whole
    /// range, so multi-page transfers are allowed.
    pub fn start_kernel_dma(&mut self, size: u64, now: SimTime) {
        let src = PhysAddr::new(self.dma_source);
        let dst = PhysAddr::new(self.dma_dest);
        self.dma_status = match self.launch_checked(
            src,
            LaunchDst::Local(dst),
            size,
            Initiator::Kernel,
            true,
            now,
        ) {
            Ok(idx) => self.mover.record(idx).expect("just started").size,
            Err(_) => DMA_FAILURE,
        };
    }

    /// Read of `DMA_STATUS`: bytes remaining of the last kernel DMA
    /// (`-1` = failed, 0 = complete).
    pub fn kernel_dma_status(&self, now: SimTime) -> u64 {
        if self.dma_status == DMA_FAILURE {
            return DMA_FAILURE;
        }
        self.mover
            .records()
            .iter()
            .rev()
            .find(|r| r.initiator == Initiator::Kernel)
            .map(|r| r.remaining_at(now))
            .unwrap_or(DMA_FAILURE)
    }

    /// Kernel-path atomic registers.
    pub fn set_atomic_addr(&mut self, pa: u64) {
        self.atomic_addr = pa;
    }

    /// Stages the first kernel-path atomic operand.
    pub fn set_atomic_op1(&mut self, v: u64) {
        self.atomic_op1 = v;
    }

    /// Stages the second kernel-path atomic operand.
    pub fn set_atomic_op2(&mut self, v: u64) {
        self.atomic_op2 = v;
    }

    /// Write to `ATOMIC_CMD`: executes the staged kernel-path atomic.
    pub fn exec_kernel_atomic(&mut self, code: u64) {
        self.atomic_result = match AtomicOp::from_code(code) {
            Some(op) => self
                .exec_atomic(op, PhysAddr::new(self.atomic_addr), self.atomic_op1, self.atomic_op2)
                .unwrap_or(DMA_FAILURE),
            None => DMA_FAILURE,
        };
    }

    /// Read of `ATOMIC_CMD`: result of the last kernel-path atomic.
    pub fn kernel_atomic_result(&self) -> u64 {
        self.atomic_result
    }

    /// Executes an atomic operation against memory (shared by the kernel
    /// path and the user-level context paths).
    pub fn exec_atomic(&mut self, op: AtomicOp, addr: PhysAddr, op1: u64, op2: u64) -> Option<u64> {
        match op.apply(&self.mem, addr, op1, op2) {
            Ok(old) => {
                self.stats.atomics += 1;
                Some(old)
            }
            Err(_) => {
                self.note_reject(RejectReason::BadRange);
                None
            }
        }
    }

    // ---- virtual-address DMA unit -----------------------------------

    /// Equips the engine with an IOMMU, enabling the `CTX_VIRT_*`
    /// context-page window and [`EngineCore::post_virt_dma`].
    pub fn enable_iommu(&mut self, iotlb: IotlbConfig, config: VirtDmaConfig) {
        self.iommu = Some(Iommu::new(iotlb));
        self.virt_config = config;
    }

    /// Whether the engine has an IOMMU (= virtual-address DMA decodes).
    pub fn virt_enabled(&self) -> bool {
        self.iommu.is_some()
    }

    /// The IOMMU, if enabled.
    pub fn iommu(&self) -> Option<&Iommu> {
        self.iommu.as_ref()
    }

    /// Mutable IOMMU (the OS maps/unmaps/pins through this).
    pub fn iommu_mut(&mut self) -> Option<&mut Iommu> {
        self.iommu.as_mut()
    }

    /// The virtual-address unit's tunables.
    pub fn virt_config(&self) -> VirtDmaConfig {
        self.virt_config
    }

    /// Counters of the virtual-address unit.
    pub fn virt_stats(&self) -> VirtStats {
        self.virt_stats
    }

    /// One virtual-address transfer.
    pub fn virt_xfer(&self, id: usize) -> Option<&VirtTransfer> {
        self.virt_xfers.get(id)
    }

    /// All virtual-address transfers, in posting order.
    pub fn virt_xfers(&self) -> &[VirtTransfer] {
        &self.virt_xfers
    }

    /// Takes the oldest unserviced I/O fault (the OS fault service polls
    /// this; hardware would raise an interrupt).
    pub fn pop_fault(&mut self) -> Option<PendingFault> {
        self.virt_faults.pop_front()
    }

    /// Unserviced I/O faults queued for the OS.
    pub fn fault_backlog(&self) -> usize {
        self.virt_faults.len()
    }

    /// Posts a virtual-address DMA for address space `asid` and streams
    /// as many page-bounded chunks as translate cleanly. Returns the
    /// transfer id; inspect its [`VirtState`] for faults.
    ///
    /// # Errors
    ///
    /// [`RejectReason::ZeroSize`] for an empty transfer (counted, like
    /// every engine reject).
    ///
    /// # Panics
    ///
    /// Panics if the engine has no IOMMU ([`EngineCore::enable_iommu`]).
    pub fn post_virt_dma(
        &mut self,
        asid: Asid,
        src: VirtAddr,
        dst: VirtAddr,
        size: u64,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        self.post_virt_common(asid, src, dst, None, size, now)
    }

    /// Posts a virtual-address DMA whose destination is a virtual
    /// address on a *remote* cluster node: the source translates on this
    /// engine's IOMMU, `dst` on the receive-side IOMMU of `to.node`
    /// (address space `to.asid` there). A receive-side fault is NACKed
    /// back over the link and pauses the transfer at the page boundary,
    /// exactly like a local fault.
    ///
    /// # Errors
    ///
    /// [`RejectReason::BadRange`] when no cluster is attached, the node
    /// does not exist, or the node has no receive-side IOMMU;
    /// [`RejectReason::ZeroSize`] for an empty transfer;
    /// [`RejectReason::LinkDown`] while the circuit breaker is tripped
    /// (fail fast until [`EngineCore::link_repair`]);
    /// [`RejectReason::NodeDown`] while this sender's failure detector
    /// holds the destination [`HealthState::Down`] (fail fast until a
    /// probe or the peer's own Hello moves it to `Recovering`).
    ///
    /// # Panics
    ///
    /// Panics if the engine has no IOMMU ([`EngineCore::enable_iommu`]).
    pub fn post_virt_dma_remote(
        &mut self,
        asid: Asid,
        src: VirtAddr,
        to: RemoteVaTarget,
        dst: VirtAddr,
        size: u64,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        if self.link_down {
            self.note_reject(RejectReason::LinkDown);
            return Err(RejectReason::LinkDown);
        }
        if let Some(ph) = self.peer_health.get_mut(&to.node) {
            if !ph.admit() {
                self.note_reject(RejectReason::NodeDown);
                return Err(RejectReason::NodeDown);
            }
        }
        let reachable =
            self.mover.cluster().is_some_and(|c| c.borrow().node_iommu(to.node).is_some());
        if !reachable {
            self.note_reject(RejectReason::BadRange);
            return Err(RejectReason::BadRange);
        }
        self.post_virt_common(asid, src, dst, Some(to), size, now)
    }

    fn post_virt_common(
        &mut self,
        asid: Asid,
        src: VirtAddr,
        dst: VirtAddr,
        remote: Option<RemoteVaTarget>,
        size: u64,
        now: SimTime,
    ) -> Result<usize, RejectReason> {
        assert!(self.iommu.is_some(), "virtual-address DMA requires enable_iommu");
        if size == 0 {
            self.note_reject(RejectReason::ZeroSize);
            return Err(RejectReason::ZeroSize);
        }
        let id = self.virt_xfers.len();
        self.virt_xfers.push(VirtTransfer {
            id,
            asid,
            src,
            dst,
            remote,
            size,
            moved: 0,
            chunks: 0,
            retries: 0,
            state: VirtState::Running,
            started: now,
            clock: now,
            finished: None,
            stall: SimTime::ZERO,
            nacks: 0,
            nack_stall: SimTime::ZERO,
            retransmits: 0,
            link_timeouts: 0,
            link_stall: SimTime::ZERO,
            last_progress: now,
        });
        self.virt_prefetch.push(0);
        self.virt_stats.posted += 1;
        // With prefetch on, a remote transfer's first frame announces
        // the full destination range: the receiving node prewalks ahead
        // of the deposits, and its OS can service a cold range in one
        // NACK round trip instead of one per page.
        if self.virt_config.prefetch.depth > 0 {
            if let Some(rt) = remote {
                let cluster = self.mover.cluster().expect("remote post validated cluster");
                cluster.borrow_mut().announce(
                    rt.node,
                    id,
                    DstAnnouncement { asid: rt.asid, va: dst, len: size },
                );
            }
        }
        self.pump_virt(id);
        Ok(id)
    }

    /// Drops a remote transfer's receive-side announcement once the
    /// transfer reaches a terminal state.
    fn retire_announcement(&mut self, id: usize) {
        let t = self.virt_xfers[id];
        if let Some(rt) = t.remote {
            if let Some(cluster) = self.mover.cluster() {
                cluster.borrow_mut().retire_announcement(rt.node, id);
            }
        }
    }

    /// Streams chunks of transfer `id` until it completes or faults.
    ///
    /// Each chunk ends at the nearest source *or* destination page
    /// boundary, so every chunk obeys the mover's user-level single-page
    /// rule on both sides, and a fault pauses the transfer exactly at a
    /// page boundary: the moved prefix is fully delivered, nothing past
    /// it is touched.
    fn pump_virt(&mut self, id: usize) {
        loop {
            let t = self.virt_xfers[id];
            if t.state != VirtState::Running {
                return;
            }
            if t.moved >= t.size {
                let x = &mut self.virt_xfers[id];
                x.state = VirtState::Complete;
                x.finished = Some(x.clock);
                self.virt_stats.completed += 1;
                // A remote completion proves the link carries traffic:
                // the breaker's consecutive-failure count starts over.
                if t.remote.is_some() {
                    self.link_failures_row = 0;
                }
                self.retire_announcement(id);
                return;
            }
            // A silent destination: the next chunk's frames fly into
            // the void and the sender's ACK lease expires, over and
            // over. Charge one lease per miss until the detector trips
            // `Down`, then abort with exactly the in-order prefix that
            // was delivered before the failure.
            if let Some(rt) = t.remote {
                let responsive =
                    self.mover.cluster().is_some_and(|c| c.borrow().node_responsive(rt.node));
                if !responsive {
                    let cluster =
                        self.mover.cluster().expect("remote virt transfer without cluster");
                    let lease = self.health.lease.max(self.reliability.ack_timeout);
                    loop {
                        cluster.borrow_mut().note_dropped(rt.node);
                        let x = &mut self.virt_xfers[id];
                        x.clock += lease;
                        x.stall += lease;
                        x.link_stall += lease;
                        x.link_timeouts += 1;
                        self.virt_stats.link_timeouts += 1;
                        let miss_at = x.clock;
                        let st = self
                            .peer_health
                            .entry(rt.node)
                            .or_default()
                            .on_miss(&self.health, miss_at);
                        if st == HealthState::Down {
                            let x = &mut self.virt_xfers[id];
                            x.state = VirtState::NodeDown;
                            x.finished = Some(x.clock);
                            self.virt_stats.node_down += 1;
                            self.retire_announcement(id);
                            return;
                        }
                    }
                }
            }
            let src_va = VirtAddr::new(t.src.as_u64() + t.moved);
            let dst_va = VirtAddr::new(t.dst.as_u64() + t.moved);
            let chunk = (t.size - t.moved)
                .min(PAGE_SIZE - src_va.page_offset())
                .min(PAGE_SIZE - dst_va.page_offset());

            // Pipeline stages 1 and 2: once the cursor reaches the end
            // of the prewalked window, walk the next `depth` pages of
            // every range this transfer still translates and prefill
            // the IOTLBs ahead of the chunk stream. The whole batch is
            // charged at the amortized rate — the walks pipeline behind
            // one another; only a demand miss blocks a chunk for the
            // full walk latency.
            let pf = self.virt_config.prefetch;
            if pf.depth > 0 && t.moved >= self.virt_prefetch[id] {
                let span = (pf.depth * PAGE_SIZE).min(t.size - t.moved);
                let iommu = self.iommu.as_mut().expect("pump without IOMMU");
                let mut batch = iommu.prewalk_range(t.asid, src_va, span, Access::Read);
                match t.remote {
                    None => {
                        batch += iommu.prewalk_range(t.asid, dst_va, span, Access::Write);
                    }
                    Some(rt) => {
                        // Receive-side prefetch: the announced dst range
                        // lets the node's IOMMU walk ahead of the
                        // arriving deposits. Best-effort — a cold page
                        // still NACKs on the demand translate below.
                        let cluster =
                            self.mover.cluster().expect("remote virt transfer without cluster");
                        batch += cluster.borrow_mut().prewalk(
                            rt.node,
                            rt.asid,
                            dst_va,
                            span,
                            Access::Write,
                        );
                    }
                }
                self.virt_prefetch[id] = t.moved + span;
                if batch > 0 {
                    let cost = self.virt_config.walk_latency
                        + SimTime::from_ps(
                            self.virt_config.walk_pipelined_latency.as_ps() * (batch - 1),
                        );
                    let x = &mut self.virt_xfers[id];
                    x.clock += cost;
                    x.stall += cost;
                }
            }

            // The source always translates on the sender's own IOMMU; a
            // purely local transfer translates its destination there too.
            let iommu = self.iommu.as_mut().expect("pump without IOMMU");
            let misses_before = iommu.stats().tlb.misses;
            let src_res = iommu.translate(t.asid, src_va, Access::Read);
            let local_dst_res = match (t.remote, src_res) {
                (None, Ok(_)) => Some(iommu.translate(t.asid, dst_va, Access::Write)),
                _ => None,
            };
            let walks = iommu.stats().tlb.misses - misses_before;
            let walk_cost = SimTime::from_ps(self.virt_config.walk_latency.as_ps() * walks);
            {
                let x = &mut self.virt_xfers[id];
                x.clock += walk_cost;
                x.stall += walk_cost;
            }
            let src_pa = match src_res {
                Ok(pa) => pa,
                Err(fault) => {
                    self.virt_xfers[id].state = VirtState::Faulted(fault);
                    self.virt_faults.push_back(PendingFault { xfer: id, fault });
                    self.virt_stats.faults += 1;
                    return;
                }
            };
            let dst_pa = match t.remote {
                None => match local_dst_res.expect("local destination translated") {
                    Ok(pa) => pa,
                    Err(fault) => {
                        self.virt_xfers[id].state = VirtState::Faulted(fault);
                        self.virt_faults.push_back(PendingFault { xfer: id, fault });
                        self.virt_stats.faults += 1;
                        return;
                    }
                },
                Some(rt) => {
                    // Receive-side translation on the node's IOMMU. Its
                    // walk cost charges the sender's clock like a local
                    // walk: the packet waits at the NI while it walks.
                    let cluster =
                        self.mover.cluster().expect("remote virt transfer without cluster");
                    let (res, rwalks) = {
                        let mut cl = cluster.borrow_mut();
                        let before =
                            cl.node_iommu(rt.node).expect("validated at post").stats().tlb.misses;
                        let res = cl.translate(rt.node, rt.asid, dst_va, Access::Write);
                        let after =
                            cl.node_iommu(rt.node).expect("validated at post").stats().tlb.misses;
                        (res, after - before)
                    };
                    let rcost = SimTime::from_ps(self.virt_config.walk_latency.as_ps() * rwalks);
                    {
                        let x = &mut self.virt_xfers[id];
                        x.clock += rcost;
                        x.stall += rcost;
                    }
                    match res {
                        Ok(pa) => pa,
                        Err(fault) => {
                            // The node NACKs the faulting packet back to
                            // the sender: the fault queues on the *node*
                            // for its OS, and the sender pays the wire
                            // latency both ways, then pauses at the page
                            // boundary exactly like a local fault.
                            let one_way = self.mover.link().latency();
                            let rtt = one_way + one_way;
                            // The notification itself rides the lossy
                            // wire: it may vanish (bounded retries
                            // recover) or arrive twice (the node's
                            // fault service must be idempotent).
                            let copies = match self.mover.chaos_mut().map(|f| f.control_fate()) {
                                None | Some(ControlFate::Deliver) => 1,
                                Some(ControlFate::Drop) => 0,
                                Some(ControlFate::Duplicate) => 2,
                            };
                            for _ in 0..copies {
                                cluster
                                    .borrow_mut()
                                    .push_fault(rt.node, PendingFault { xfer: id, fault });
                            }
                            let x = &mut self.virt_xfers[id];
                            x.state = VirtState::Faulted(fault);
                            x.clock += rtt;
                            x.stall += rtt;
                            x.nack_stall += rtt;
                            x.nacks += 1;
                            self.virt_stats.faults += 1;
                            self.virt_stats.remote_faults += 1;
                            self.virt_stats.nacks += 1;
                            return;
                        }
                    }
                }
            };

            // Pipeline stage 3: chunk coalescing. Extend the chunk over
            // following pages while their translations are already
            // IOTLB-resident, permission-compatible and physically
            // contiguous with the chunk on *both* ends. Probes count
            // hits (the frames feed the merged chunk) but never misses,
            // so the demand walk-cost accounting is untouched; any
            // lookahead failure just ends the merge and leaves the
            // demand path to translate — or fault — at that boundary.
            let mut chunk = chunk;
            let mut coalesced = false;
            if pf.max_coalesce > 1 && src_va.page_offset() == dst_va.page_offset() {
                let mut pages = 1;
                while pages < pf.max_coalesce && t.moved + chunk < t.size {
                    // Equal offsets: the chunk ends at a page start of
                    // both ranges, so the lookahead walks whole pages.
                    let ext = (t.size - t.moved - chunk).min(PAGE_SIZE);
                    let next_src = VirtAddr::new(src_va.as_u64() + chunk).page();
                    let next_dst = VirtAddr::new(dst_va.as_u64() + chunk).page();
                    let iommu = self.iommu.as_mut().expect("pump without IOMMU");
                    let src_ok = iommu
                        .probe(t.asid, next_src, Access::Read)
                        .is_some_and(|f| f.base().as_u64() == src_pa.as_u64() + chunk);
                    if !src_ok {
                        break;
                    }
                    let dst_frame = match t.remote {
                        None => iommu.probe(t.asid, next_dst, Access::Write),
                        Some(rt) => {
                            let cluster =
                                self.mover.cluster().expect("remote virt transfer without cluster");
                            let f = cluster.borrow_mut().probe(
                                rt.node,
                                rt.asid,
                                next_dst,
                                Access::Write,
                            );
                            f
                        }
                    };
                    let dst_ok =
                        dst_frame.is_some_and(|f| f.base().as_u64() == dst_pa.as_u64() + chunk);
                    if !dst_ok {
                        break;
                    }
                    chunk += ext;
                    pages += 1;
                    coalesced = true;
                }
            }

            let clock = self.virt_xfers[id].clock;
            let initiator = Initiator::VirtDma { asid: t.asid };
            let dst = match t.remote {
                Some(rt) => LaunchDst::Remote(RemoteDst { node: rt.node, addr: dst_pa }),
                None => LaunchDst::Local(dst_pa),
            };
            let started = self
                .launch_checked(src_pa, dst, chunk, initiator, coalesced, clock)
                .map(|idx| self.mover.record(idx).expect("just started").finished);
            match started {
                Ok(finished) => {
                    self.virt_stats.chunks += 1;
                    let delivery =
                        if t.remote.is_some() { self.mover.last_delivery() } else { None };
                    let x = &mut self.virt_xfers[id];
                    x.chunks += 1;
                    x.clock = finished;
                    match delivery {
                        // The chunk crossed a chaos link: only the
                        // in-order prefix the receiver acked counts,
                        // and every recovery cost lands on the books.
                        Some(o) => {
                            x.moved += o.delivered;
                            x.retransmits += o.retransmits;
                            x.link_timeouts += o.timeouts;
                            x.link_stall += o.stall;
                            x.stall += o.stall;
                            if o.delivered > 0 {
                                x.last_progress = finished;
                                if let Some(rt) = t.remote {
                                    self.peer_health
                                        .entry(rt.node)
                                        .or_default()
                                        .on_progress(finished);
                                }
                            }
                            self.virt_stats.retransmits += o.retransmits as u64;
                            self.virt_stats.link_timeouts += o.timeouts as u64;
                            if !o.completed {
                                // Retransmit budget ran dry: the link
                                // layer gives up cleanly at the exact
                                // delivered prefix.
                                x.state = VirtState::LinkFailed;
                                x.finished = Some(finished);
                                self.virt_stats.link_failed += 1;
                                self.note_link_failure();
                                self.retire_announcement(id);
                                return;
                            }
                        }
                        None => {
                            x.moved += chunk;
                            x.last_progress = finished;
                            if let Some(rt) = t.remote {
                                self.peer_health.entry(rt.node).or_default().on_progress(finished);
                            }
                        }
                    }
                }
                Err(_) => {
                    // Translation succeeded but the frame is not backed by
                    // installed RAM — an OS mapping bug (the reject was
                    // counted by the checked launch). Surface it as an
                    // unmapped-page failure rather than wedging.
                    let fault = IoFault {
                        asid: t.asid,
                        va: src_va,
                        access: Access::Read,
                        kind: IoFaultKind::Unmapped,
                    };
                    let x = &mut self.virt_xfers[id];
                    x.state = VirtState::Failed(fault);
                    x.finished = Some(x.clock);
                    self.virt_stats.failed += 1;
                    self.retire_announcement(id);
                    return;
                }
            }
        }
    }

    /// Resumes a faulted transfer (the OS calls this after servicing the
    /// fault; tests also call it *without* servicing to model a slow or
    /// absent OS). Each fruitless resume doubles the backoff; after
    /// [`RetryPolicy::max_retries`](crate::RetryPolicy) consecutive
    /// attempts with no progress the transfer fails with its reported
    /// fault.
    pub fn resume_virt(&mut self, id: usize, now: SimTime) -> VirtState {
        let t = self.virt_xfers[id];
        let VirtState::Faulted(fault) = t.state else {
            return t.state;
        };
        if self.virt_config.retry.exhausted(t.retries) {
            let x = &mut self.virt_xfers[id];
            x.state = VirtState::Failed(fault);
            x.finished = Some(x.clock.max(now));
            self.virt_stats.failed += 1;
            self.retire_announcement(id);
            return self.virt_xfers[id].state;
        }
        let backoff = self.virt_config.retry.backoff_after(t.retries);
        let moved_before = t.moved;
        {
            let x = &mut self.virt_xfers[id];
            x.retries += 1;
            x.state = VirtState::Running;
            let resume_at = x.clock.max(now) + backoff;
            x.stall += resume_at - x.clock;
            x.clock = resume_at;
            // Re-prime the prefetch window at the cursor: the fault
            // service may have mapped pages the aborted window skipped.
            self.virt_prefetch[id] = x.moved;
        }
        self.virt_stats.retries += 1;
        self.pump_virt(id);
        let x = &mut self.virt_xfers[id];
        if x.moved > moved_before {
            x.retries = 0;
        }
        x.state
    }

    /// Fails a faulted transfer outright (the OS found the fault
    /// unresolvable — e.g. the VA is simply not part of the posting
    /// address space).
    pub fn fail_virt(&mut self, id: usize, now: SimTime) -> VirtState {
        let t = &mut self.virt_xfers[id];
        if let VirtState::Faulted(fault) = t.state {
            t.state = VirtState::Failed(fault);
            t.finished = Some(t.clock.max(now));
            self.virt_stats.failed += 1;
            self.retire_announcement(id);
        }
        self.virt_xfers[id].state
    }

    /// Status of a virtual-address transfer, in the paper's status-load
    /// convention: bytes remaining, 0 = complete, `-1` = failed, `-2` =
    /// aborted by the link layer ([`DMA_LINK_FAILED`]), `-4` = aborted
    /// because the destination node died ([`DMA_NODE_DOWN`]).
    pub fn virt_status(&self, id: usize, now: SimTime) -> u64 {
        match self.virt_xfers.get(id) {
            None => DMA_FAILURE,
            Some(t) => match t.state {
                VirtState::Failed(_) => DMA_FAILURE,
                VirtState::LinkFailed => DMA_LINK_FAILED,
                VirtState::NodeDown => DMA_NODE_DOWN,
                _ => t.remaining_at(now),
            },
        }
    }

    /// Store to a `CTX_VIRT_*` offset of context `ctx`'s page.
    pub fn ctx_virt_store(&mut self, ctx: u32, off: u64, data: u64, now: SimTime) {
        if !self.has_context(ctx) {
            return;
        }
        match off {
            regs::CTX_VIRT_SRC => self.virt_stage[ctx as usize].src = Some(data),
            regs::CTX_VIRT_DST => self.virt_stage[ctx as usize].dst = Some(data),
            regs::CTX_VIRT_GO => {
                let stage = self.virt_stage[ctx as usize];
                let (Some(src), Some(dst)) = (stage.src, stage.dst) else {
                    self.note_reject(RejectReason::MissingArgs);
                    self.virt_stage[ctx as usize].last = None;
                    return;
                };
                let posted =
                    self.post_virt_dma(ctx, VirtAddr::new(src), VirtAddr::new(dst), data, now).ok();
                self.virt_stage[ctx as usize].last = posted;
            }
            _ => {}
        }
    }

    /// Load from a `CTX_VIRT_*` offset of context `ctx`'s page.
    pub fn ctx_virt_load(&self, ctx: u32, off: u64, now: SimTime) -> u64 {
        let Some(stage) = self.virt_stage.get(ctx as usize) else {
            return DMA_FAILURE;
        };
        match off {
            regs::CTX_VIRT_SRC => stage.src.unwrap_or(0),
            regs::CTX_VIRT_DST => stage.dst.unwrap_or(0),
            regs::CTX_VIRT_GO => match stage.last {
                Some(id) => self.virt_status(id, now),
                None => DMA_FAILURE,
            },
            _ => DMA_FAILURE,
        }
    }

    // ---- doorbell-batched descriptor rings ---------------------------

    /// Enables the descriptor-ring unit: the `CTX_RING_DB` doorbell
    /// offset and the privileged `RING_BASE_TABLE`/`RING_CTL_TABLE`
    /// windows decode from now on. Descriptors carry virtual addresses
    /// translated at dequeue time, so rings require the IOMMU.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no IOMMU ([`EngineCore::enable_iommu`]).
    pub fn enable_rings(&mut self, config: RingConfig) {
        assert!(self.iommu.is_some(), "descriptor rings require enable_iommu");
        self.ring_config = Some(config);
    }

    /// Whether the descriptor-ring unit is enabled.
    pub fn rings_enabled(&self) -> bool {
        self.ring_config.is_some()
    }

    /// The ring tunables in force, if enabled.
    pub fn ring_config(&self) -> Option<RingConfig> {
        self.ring_config
    }

    /// Counters of the descriptor-ring unit.
    pub fn ring_stats(&self) -> RingStats {
        self.ring_stats
    }

    /// Context `ctx`'s ring state (geometry, cursors).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn ring(&self, ctx: u32) -> &DescRing {
        &self.rings[ctx as usize]
    }

    /// Privileged `RING_BASE_TABLE` write: stages the host-physical
    /// base of context `ctx`'s ring. Out-of-range writes are ignored,
    /// like key-table writes.
    pub fn set_ring_base(&mut self, ctx: u32, base: u64) {
        if let Some(r) = self.rings.get_mut(ctx as usize) {
            r.base = PhysAddr::new(base);
        }
    }

    /// Privileged `RING_CTL_TABLE` write: registers the ring with
    /// `capacity` slots over the staged base (0 deregisters). Resets
    /// the cursors — registration starts an empty ring.
    pub fn set_ring_ctl(&mut self, ctx: u32, capacity: u64) {
        if let Some(r) = self.rings.get_mut(ctx as usize) {
            let cap = capacity.min(u32::MAX as u64) as u32;
            *r = DescRing {
                base: r.base,
                capacity: cap,
                consumed: vec![false; cap as usize],
                ..DescRing::default()
            };
        }
    }

    /// The user-library post helper: encodes `desc` into the next free
    /// ring slot in host memory (four plain word stores — the cheap
    /// part the doorbell amortizes over) and advances the posted
    /// cursor. Returns the absolute slot index; the descriptor does
    /// nothing until a doorbell covers it.
    ///
    /// # Errors
    ///
    /// [`RejectReason::RingFull`] when no ring is registered for `ctx`
    /// or all `capacity` slots hold undequeued descriptors;
    /// [`RejectReason::BadRange`] when the registered window leaves
    /// installed RAM. Both are counted like every engine reject.
    pub fn ring_post(
        &mut self,
        ctx: u32,
        desc: &DmaDescriptor,
        _now: SimTime,
    ) -> Result<u64, RejectReason> {
        if self.ring_config.is_none()
            || !self.has_context(ctx)
            || !self.rings[ctx as usize].registered()
        {
            self.note_reject(RejectReason::RingFull);
            return Err(RejectReason::RingFull);
        }
        let r = &self.rings[ctx as usize];
        if r.posted - r.head >= r.capacity as u64 {
            self.note_reject(RejectReason::RingFull);
            return Err(RejectReason::RingFull);
        }
        let slot = r.posted;
        let addr = r.slot_addr((slot % r.capacity as u64) as u32);
        let words = desc.encode();
        for (w, word) in words.iter().enumerate() {
            let wrote =
                self.mem.borrow_mut().write_u64(PhysAddr::new(addr.as_u64() + 8 * w as u64), *word);
            if wrote.is_err() {
                self.note_reject(RejectReason::BadRange);
                return Err(RejectReason::BadRange);
            }
        }
        self.rings[ctx as usize].posted = slot + 1;
        self.ring_stats.posted += 1;
        Ok(slot)
    }

    /// `CTX_RING_DB` load: descriptors posted but not yet dequeued.
    pub fn ring_db_load(&self, ctx: u32) -> u64 {
        match self.rings.get(ctx as usize) {
            Some(r) if r.registered() => r.pending(),
            _ => DMA_FAILURE,
        }
    }

    /// The doorbell: dequeues, translates and launches every
    /// descriptor from the ring's head cursor up to `tail` (absolute
    /// index, as the doorbell store's payload). Each slot fetch charges
    /// [`RingConfig::fetch_latency`] to the *launch clock*, so a batch
    /// of N descriptors launches back-to-back at `now + k·fetch` — the
    /// CPU paid one uncached store for all of them; that is the whole
    /// amortization. A [`DESC_FLAG_CHAIN`] head walks its fragment
    /// chain and gather-launches every fragment at the head's
    /// destination plus the accumulated offset; consumed fragment slots
    /// are skipped by the main scan.
    ///
    /// Protection holds per descriptor: local and remote-VA launches
    /// translate through the IOMMU under the posting context's ASID,
    /// and remote-physical launches translate their source the same
    /// way. A descriptor the process could not have posted through the
    /// register path is rejected (and counted), never launched.
    pub fn ring_doorbell(&mut self, ctx: u32, tail: u64, now: SimTime) -> Vec<RingLaunch> {
        let mut out = Vec::new();
        if self.ring_config.is_none() || !self.has_context(ctx) {
            return out;
        }
        self.ring_stats.doorbells += 1;
        if !self.rings[ctx as usize].registered() {
            self.note_reject(RejectReason::RingFull);
            return out;
        }
        let fetch = self.ring_config.expect("checked above").fetch_latency;
        // Prune drained launches so the live lists (and the busy check)
        // stay proportional to in-flight work, not ring history.
        {
            let mut live_phys = std::mem::take(&mut self.rings[ctx as usize].live_phys);
            live_phys
                .retain(|&i| self.mover.record(i).is_some_and(|rec| rec.remaining_at(now) > 0));
            let mut live_virt = std::mem::take(&mut self.rings[ctx as usize].live_virt);
            live_virt.retain(|&id| self.virt_xfers.get(id).is_some_and(|x| virt_xfer_pins(x, now)));
            let r = &mut self.rings[ctx as usize];
            r.live_phys = live_phys;
            r.live_virt = live_virt;
        }
        {
            // A raw doorbell (CPU wrote the slots itself) advances the
            // posted cursor past anything the post helper tracked.
            let r = &mut self.rings[ctx as usize];
            if tail > r.posted {
                r.posted = tail;
            }
        }
        let mut clock = now;
        loop {
            let (head, limit, capacity) = {
                let r = &self.rings[ctx as usize];
                (r.head, tail.min(r.posted), r.capacity)
            };
            if head >= limit {
                break;
            }
            let rel = (head % capacity as u64) as usize;
            self.rings[ctx as usize].head = head + 1;
            if self.rings[ctx as usize].consumed[rel] {
                self.rings[ctx as usize].consumed[rel] = false;
                continue;
            }
            clock += fetch;
            self.ring_stats.fetched += 1;
            let Some(desc) = self.fetch_desc(ctx, rel as u32) else {
                self.ring_stats.rejected += 1;
                self.note_reject(RejectReason::BadRange);
                out.push(RingLaunch::Rejected(RejectReason::BadRange));
                continue;
            };
            if desc.flags & DESC_FLAG_FRAG != 0 {
                // An unconsumed fragment reached by the main scan: its
                // chain head never claimed it — nothing to launch.
                continue;
            }
            // Gather chain: the head descriptor is fragment 0, its link
            // names the next fragment slot. The walk is bounded by the
            // ring capacity, so a link cycle cannot wedge the engine.
            let mut frags = vec![(desc.src, desc.len, 0u64)];
            let mut offset = desc.len;
            let mut chain_ok = true;
            if desc.flags & DESC_FLAG_CHAIN != 0 {
                let mut link = desc.link;
                let mut steps = 0u32;
                while let Some(slot) = link {
                    steps += 1;
                    if slot >= capacity || steps > capacity {
                        chain_ok = false;
                        break;
                    }
                    clock += fetch;
                    self.ring_stats.fetched += 1;
                    let Some(f) = self.fetch_desc(ctx, slot) else {
                        chain_ok = false;
                        break;
                    };
                    if f.flags & DESC_FLAG_FRAG == 0 {
                        chain_ok = false;
                        break;
                    }
                    self.rings[ctx as usize].consumed[slot as usize] = true;
                    frags.push((f.src, f.len, offset));
                    offset += f.len;
                    link = f.link;
                }
            }
            if !chain_ok {
                self.ring_stats.rejected += 1;
                self.note_reject(RejectReason::BadRange);
                out.push(RingLaunch::Rejected(RejectReason::BadRange));
                continue;
            }
            let in_chain = frags.len() > 1;
            for (i, (src, len, off)) in frags.into_iter().enumerate() {
                let launch = self.ring_launch(ctx, src, desc.dst, off, len, clock);
                match launch {
                    RingLaunch::Virt(id) => {
                        self.rings[ctx as usize].live_virt.push(id);
                        self.virt_stage[ctx as usize].last = Some(id);
                        self.ring_stats.launched += 1;
                        if in_chain && i > 0 {
                            self.ring_stats.chained += 1;
                        }
                    }
                    RingLaunch::Phys(idx) => {
                        self.rings[ctx as usize].live_phys.push(idx);
                        self.contexts[ctx as usize].set_last_transfer(idx);
                        self.ring_stats.launched += 1;
                        if in_chain && i > 0 {
                            self.ring_stats.chained += 1;
                        }
                    }
                    RingLaunch::Rejected(_) => self.ring_stats.rejected += 1,
                }
                out.push(launch);
            }
        }
        let r = &mut self.rings[ctx as usize];
        r.drain_until = r.drain_until.max(clock);
        out
    }

    /// Fetches and decodes the descriptor in relative slot `rel` of
    /// context `ctx`'s ring (the engine-initiated host-memory read the
    /// per-descriptor fetch latency models).
    fn fetch_desc(&self, ctx: u32, rel: u32) -> Option<DmaDescriptor> {
        let base = self.rings[ctx as usize].slot_addr(rel);
        let mut words = [0u64; DESC_WORDS];
        {
            let mem = self.mem.borrow();
            for (w, word) in words.iter_mut().enumerate() {
                *word = mem.read_u64(PhysAddr::new(base.as_u64() + 8 * w as u64)).ok()?;
            }
        }
        DmaDescriptor::decode(words)
    }

    /// Launches one dequeued descriptor (or chain fragment) at launch
    /// clock `at`, reusing the existing checked paths per destination
    /// kind. `offset` is the fragment's accumulated gather offset into
    /// the destination.
    fn ring_launch(
        &mut self,
        ctx: u32,
        src: VirtAddr,
        dst: DescDst,
        offset: u64,
        len: u64,
        at: SimTime,
    ) -> RingLaunch {
        match dst {
            DescDst::Local(va) => {
                match self.post_virt_dma(ctx, src, VirtAddr::new(va.as_u64() + offset), len, at) {
                    Ok(id) => RingLaunch::Virt(id),
                    Err(reason) => RingLaunch::Rejected(reason),
                }
            }
            DescDst::RemoteVirt { node, asid, va } => {
                let to = RemoteVaTarget { node, asid };
                let dst_va = VirtAddr::new(va.as_u64() + offset);
                match self.post_virt_dma_remote(ctx, src, to, dst_va, len, at) {
                    Ok(id) => RingLaunch::Virt(id),
                    Err(reason) => RingLaunch::Rejected(reason),
                }
            }
            DescDst::Remote { node, addr } => {
                // SHRIMP-1-style pre-proved physical destination: only
                // the source translates, under the posting context's
                // ASID (single-page rule holds per fragment).
                let iommu = self.iommu.as_mut().expect("rings require enable_iommu");
                let Ok(src_pa) = iommu.translate(ctx, src, Access::Read) else {
                    self.note_reject(RejectReason::BadRange);
                    return RingLaunch::Rejected(RejectReason::BadRange);
                };
                if self.link_down {
                    self.note_reject(RejectReason::LinkDown);
                    return RingLaunch::Rejected(RejectReason::LinkDown);
                }
                let dst_pa = PhysAddr::new(addr.as_u64() + offset);
                let rd = RemoteDst { node, addr: dst_pa };
                match self.launch_checked(
                    src_pa,
                    LaunchDst::Remote(rd),
                    len,
                    Initiator::Context(ctx),
                    false,
                    at,
                ) {
                    Ok(idx) => RingLaunch::Phys(idx),
                    Err(reason) => RingLaunch::Rejected(reason),
                }
            }
        }
    }

    /// The transfer record a context's status load refers to.
    pub fn context_transfer(&self, ctx: u32) -> Option<&TransferRecord> {
        self.contexts
            .get(ctx as usize)
            .and_then(|c| c.last_transfer())
            .and_then(|i| self.mover.record(i))
    }
}

/// Whether a virtual transfer still pins its initiating context at
/// `now`: live states (running, or faulted awaiting OS service) always
/// pin; terminal states (complete, failed, link-failed, node-down) pin
/// only until the simulated instant they settled — a transfer that
/// already reached its outcome can never again observe the register
/// file, so holding the context hostage past `finished` would wedge
/// the steal path forever after a node death.
fn virt_xfer_pins(x: &VirtTransfer, now: SimTime) -> bool {
    match x.state {
        VirtState::Running | VirtState::Faulted(_) => true,
        _ => x.finished.is_some_and(|f| now < f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysMemory, PAGE_SIZE};

    fn core() -> EngineCore {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        EngineCore::new(layout, mem, EngineConfig::default())
    }

    #[test]
    fn kernel_dma_round_trip() {
        let mut c = core();
        c.set_dma_source(0x2000);
        c.set_dma_dest(0x6000);
        c.start_kernel_dma(256, SimTime::ZERO);
        assert_eq!(c.stats().started, 1);
        // Far in the future the transfer is complete.
        assert_eq!(c.kernel_dma_status(SimTime::from_us(10_000)), 0);
    }

    #[test]
    fn kernel_dma_failure_status() {
        let mut c = core();
        c.set_dma_source(0x2000);
        c.set_dma_dest(0x6000);
        c.start_kernel_dma(0, SimTime::ZERO);
        assert_eq!(c.kernel_dma_status(SimTime::ZERO), DMA_FAILURE);
        assert_eq!(c.stats().rejected_for(RejectReason::ZeroSize), 1);
    }

    #[test]
    fn user_dma_rejects_page_cross() {
        let mut c = core();
        let src = PhysAddr::new(PAGE_SIZE - 8);
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        let err = c.start_user_dma(src, dst, 64, Initiator::Anonymous, SimTime::ZERO).unwrap_err();
        assert_eq!(err, RejectReason::PageCross);
        assert_eq!(c.stats().rejected(), 1);
    }

    #[test]
    fn keys_and_contexts() {
        let mut c = core();
        assert_eq!(c.num_contexts(), 4);
        c.set_key(2, 0xDEAD);
        assert_eq!(c.key(2), 0xDEAD);
        assert_eq!(c.key(0), 0);
        assert!(c.has_context(3));
        assert!(!c.has_context(4));
        // Out-of-range key writes are ignored, reads return 0.
        c.set_key(99, 1);
        assert_eq!(c.key(99), 0);
    }

    #[test]
    fn save_restore_round_trip() {
        let mut c = core();
        c.set_key(1, 0xBEEF);
        c.context_mut(1).push_addr(PhysAddr::new(0x2000));
        c.context_mut(1).push_addr(PhysAddr::new(0x1000));
        c.context_mut(1).set_size(64);
        let before = *c.context(1);

        let image = c.save_context(1, SimTime::ZERO).unwrap();
        assert_eq!(image.key, 0xBEEF);
        // The slot is scrubbed: key 0, no staged arguments.
        assert_eq!(c.key(1), 0);
        assert!(!c.context(1).args_complete());

        c.restore_context(3, &image);
        assert_eq!(c.key(3), 0xBEEF);
        assert_eq!(*c.context(3), before);
        assert_eq!(c.ctx_stats(), CtxStats { spills: 1, fills: 1, ..CtxStats::default() });
    }

    #[test]
    fn save_refused_while_transfer_in_flight() {
        let mut c = core();
        let idx = c
            .start_user_dma(
                PhysAddr::new(0x2000),
                PhysAddr::new(0x6000),
                256,
                Initiator::Context(0),
                SimTime::ZERO,
            )
            .unwrap();
        c.context_mut(0).set_last_transfer(idx);

        assert!(c.context_busy(0, SimTime::ZERO));
        assert_eq!(c.save_context(0, SimTime::ZERO), Err(CtxBusy::Transfer));
        assert_eq!(c.ctx_stats().busy_denials, 1);

        // Once the wire drains, the same save succeeds.
        let later = SimTime::from_us(10_000);
        assert!(!c.context_busy(0, later));
        assert!(c.save_context(0, later).is_ok());
        assert_eq!(c.ctx_stats().spills, 1);
    }

    #[test]
    fn steal_and_starvation_notes() {
        let mut c = core();
        c.note_ctx_steal();
        c.note_ctx_steal();
        c.note_ctx_starvation();
        assert_eq!(c.ctx_stats().steals, 2);
        assert_eq!(c.ctx_stats().starvations, 1);
    }

    #[test]
    fn kernel_atomic_path() {
        let mut c = core();
        c.mem.borrow_mut().write_u64(PhysAddr::new(0x100), 40).unwrap();
        c.set_atomic_addr(0x100);
        c.set_atomic_op1(2);
        c.exec_kernel_atomic(AtomicOp::Add.code());
        assert_eq!(c.kernel_atomic_result(), 40);
        assert_eq!(c.mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 42);
        assert_eq!(c.stats().atomics, 1);

        c.exec_kernel_atomic(99);
        assert_eq!(c.kernel_atomic_result(), DMA_FAILURE);
    }

    #[test]
    fn mapped_out_table() {
        let mut c = core();
        c.set_mapped_out(PhysFrame::new(3), Destination::Local(PhysAddr::new(0x8000)));
        assert_eq!(
            c.mapped_out(PhysFrame::new(3)),
            Some(Destination::Local(PhysAddr::new(0x8000)))
        );
        assert_eq!(c.mapped_out(PhysFrame::new(4)), None);
    }

    #[test]
    fn remote_user_dma_deposits_on_the_node() {
        let mut c = core();
        let cluster = crate::Cluster::new(2, 1 << 16).shared();
        c.attach_cluster(cluster.clone());
        c.mem.borrow_mut().write_u64(PhysAddr::new(0x2000), 0x77).unwrap();
        let idx = c
            .start_user_dma_remote(
                PhysAddr::new(0x2000),
                1,
                PhysAddr::new(0x400),
                8,
                Initiator::Anonymous,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(cluster.borrow().read_u64(1, PhysAddr::new(0x400)).unwrap(), 0x77);
        let rec = c.mover().record(idx).unwrap();
        assert_eq!(rec.remote_node, Some(1));
        assert_eq!(rec.destination(), Destination::Remote { node: 1, addr: PhysAddr::new(0x400) });
    }

    #[test]
    fn remote_dma_without_cluster_is_rejected() {
        let mut c = core();
        let err = c
            .start_user_dma_remote(
                PhysAddr::new(0x2000),
                0,
                PhysAddr::new(0),
                8,
                Initiator::Anonymous,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, RejectReason::BadRange);
    }

    #[test]
    fn pending_extra_latency_accumulates_and_clears() {
        let mut c = core();
        assert_eq!(c.take_pending_extra(), SimTime::ZERO);
        c.charge_key_check();
        c.charge_key_check();
        assert_eq!(c.take_pending_extra(), SimTime::from_ns(240));
        assert_eq!(c.take_pending_extra(), SimTime::ZERO);
    }

    fn virt_core() -> EngineCore {
        let mut c = core();
        c.enable_iommu(IotlbConfig::default(), VirtDmaConfig::default());
        let iommu = c.iommu_mut().unwrap();
        iommu.create_context(1);
        // VA pages 0..4 → frames 8..12 (src), VA pages 8..12 → frames
        // 16..20 (dst), read-write, resident.
        for p in 0..4u64 {
            iommu
                .map(
                    1,
                    udma_mem::VirtPage::new(p),
                    PhysFrame::new(8 + p),
                    udma_mem::Perms::READ_WRITE,
                    true,
                )
                .unwrap();
            iommu
                .map(
                    1,
                    udma_mem::VirtPage::new(8 + p),
                    PhysFrame::new(16 + p),
                    udma_mem::Perms::READ_WRITE,
                    true,
                )
                .unwrap();
        }
        c
    }

    #[test]
    fn virt_dma_splits_at_page_boundaries() {
        let mut c = virt_core();
        c.mem.borrow_mut().write_u64(PhysAddr::new(8 * PAGE_SIZE + 0x100), 0xABCD).unwrap();
        // 2.5 pages, starting mid-page: chunks must never cross a page.
        let src = VirtAddr::new(0x100);
        let dst = VirtAddr::new(8 * PAGE_SIZE + 0x100);
        let id = c.post_virt_dma(1, src, dst, 2 * PAGE_SIZE + 128, SimTime::ZERO).unwrap();
        let t = *c.virt_xfer(id).unwrap();
        assert_eq!(t.state, VirtState::Complete);
        assert_eq!(t.moved, 2 * PAGE_SIZE + 128);
        assert_eq!(t.chunks, 3); // (PAGE-0x100) + PAGE + (128+0x100)
        for rec in c.mover().records() {
            assert_eq!(rec.initiator, Initiator::VirtDma { asid: 1 });
            assert!(rec.src.page_offset() + rec.size <= PAGE_SIZE);
            assert!(rec.dst.page_offset() + rec.size <= PAGE_SIZE);
        }
        // The data actually landed (frame 16 = VA page 8).
        assert_eq!(c.mem.borrow().read_u64(PhysAddr::new(16 * PAGE_SIZE + 0x100)).unwrap(), 0xABCD);
        assert_eq!(c.virt_status(id, SimTime::from_us(100_000)), 0);
    }

    #[test]
    fn virt_fault_pauses_at_the_boundary_and_resumes() {
        let mut c = virt_core();
        // Second source page (VA page 1) is not mapped.
        c.iommu_mut().unwrap().unmap(1, udma_mem::VirtPage::new(1)).unwrap();
        let id = c
            .post_virt_dma(
                1,
                VirtAddr::new(0),
                VirtAddr::new(8 * PAGE_SIZE),
                2 * PAGE_SIZE,
                SimTime::ZERO,
            )
            .unwrap();
        let t = *c.virt_xfer(id).unwrap();
        assert!(matches!(t.state, VirtState::Faulted(_)));
        // Exactly the first page moved; nothing past the fault.
        assert_eq!(t.moved, PAGE_SIZE);
        let pending = c.pop_fault().unwrap();
        assert_eq!(pending.xfer, id);
        assert_eq!(pending.fault.va.page(), udma_mem::VirtPage::new(1));
        assert_eq!(pending.fault.kind, IoFaultKind::Unmapped);
        // OS services the fault, engine resumes and completes.
        c.iommu_mut()
            .unwrap()
            .map(
                1,
                udma_mem::VirtPage::new(1),
                PhysFrame::new(9),
                udma_mem::Perms::READ_WRITE,
                true,
            )
            .unwrap();
        let state = c.resume_virt(id, SimTime::from_us(5));
        assert_eq!(state, VirtState::Complete);
        assert_eq!(c.virt_xfer(id).unwrap().moved, 2 * PAGE_SIZE);
        assert_eq!(c.virt_stats().faults, 1);
        assert_eq!(c.virt_stats().retries, 1);
    }

    #[test]
    fn virt_retries_are_bounded() {
        let mut c = virt_core();
        c.iommu_mut().unwrap().unmap(1, udma_mem::VirtPage::new(0)).unwrap();
        let id = c
            .post_virt_dma(1, VirtAddr::new(0), VirtAddr::new(8 * PAGE_SIZE), 64, SimTime::ZERO)
            .unwrap();
        let max = c.virt_config().retry.max_retries;
        let mut state = c.virt_xfer(id).unwrap().state;
        let mut resumes = 0;
        while matches!(state, VirtState::Faulted(_)) {
            state = c.resume_virt(id, SimTime::ZERO);
            resumes += 1;
            assert!(resumes <= max + 1, "resume loop did not terminate");
        }
        assert!(matches!(state, VirtState::Failed(_)));
        assert_eq!(resumes, max + 1);
        assert_eq!(c.virt_status(id, SimTime::from_us(100)), DMA_FAILURE);
        assert_eq!(c.virt_xfer(id).unwrap().moved, 0);
        // Backoff showed up as stall time.
        assert!(c.virt_xfer(id).unwrap().stall > SimTime::ZERO);
    }

    #[test]
    fn virt_fail_is_terminal_and_preserves_prefix_rule() {
        let mut c = virt_core();
        c.iommu_mut().unwrap().unmap(1, udma_mem::VirtPage::new(1)).unwrap();
        let id = c
            .post_virt_dma(
                1,
                VirtAddr::new(0),
                VirtAddr::new(8 * PAGE_SIZE),
                2 * PAGE_SIZE,
                SimTime::ZERO,
            )
            .unwrap();
        let state = c.fail_virt(id, SimTime::from_us(1));
        assert!(matches!(state, VirtState::Failed(_)));
        assert_eq!(c.virt_xfer(id).unwrap().moved, PAGE_SIZE);
        assert_eq!(c.virt_status(id, SimTime::from_us(1)), DMA_FAILURE);
        // Further resumes do nothing.
        assert_eq!(c.resume_virt(id, SimTime::from_us(2)), state);
    }

    #[test]
    fn ctx_virt_window_posts_and_reports() {
        let mut c = virt_core();
        let now = SimTime::ZERO;
        // GO before staging: rejected with MissingArgs.
        c.ctx_virt_store(1, regs::CTX_VIRT_GO, 64, now);
        assert_eq!(c.ctx_virt_load(1, regs::CTX_VIRT_GO, now), DMA_FAILURE);
        assert_eq!(c.stats().rejected_for(RejectReason::MissingArgs), 1);

        c.ctx_virt_store(1, regs::CTX_VIRT_SRC, 0x40, now);
        c.ctx_virt_store(1, regs::CTX_VIRT_DST, 8 * PAGE_SIZE, now);
        c.ctx_virt_store(1, regs::CTX_VIRT_GO, 64, now);
        assert_eq!(c.ctx_virt_load(1, regs::CTX_VIRT_SRC, now), 0x40);
        assert_eq!(c.ctx_virt_load(1, regs::CTX_VIRT_GO, SimTime::from_us(100_000)), 0);
        assert_eq!(c.virt_stats().posted, 1);
        // Unknown context: store ignored, load fails.
        c.ctx_virt_store(9, regs::CTX_VIRT_GO, 64, now);
        assert_eq!(c.ctx_virt_load(9, regs::CTX_VIRT_GO, now), DMA_FAILURE);
    }

    #[test]
    fn virt_iotlb_hits_skip_the_walk_cost() {
        let mut c = virt_core();
        let id1 = c
            .post_virt_dma(
                1,
                VirtAddr::new(0),
                VirtAddr::new(8 * PAGE_SIZE),
                PAGE_SIZE,
                SimTime::ZERO,
            )
            .unwrap();
        let cold = c.virt_xfer(id1).unwrap().stall;
        let id2 = c
            .post_virt_dma(
                1,
                VirtAddr::new(0),
                VirtAddr::new(8 * PAGE_SIZE),
                PAGE_SIZE,
                SimTime::ZERO,
            )
            .unwrap();
        let warm = c.virt_xfer(id2).unwrap().stall;
        assert!(cold > SimTime::ZERO);
        assert_eq!(warm, SimTime::ZERO);
        assert_eq!(c.iommu().unwrap().stats().tlb.hits, 2);
    }

    /// A virt core attached to a 2-node cluster with receive-side
    /// IOMMUs; node 0's ASID 7 maps VA pages 0..4 → node frames 2..6.
    fn remote_virt_core() -> (EngineCore, crate::SharedCluster) {
        let mut c = virt_core();
        let mut cluster = crate::Cluster::new(2, 1 << 16);
        cluster.enable_virt(IotlbConfig::default());
        let iommu = cluster.node_iommu_mut(0).unwrap();
        iommu.create_context(7);
        for p in 0..4u64 {
            iommu
                .map(
                    7,
                    udma_mem::VirtPage::new(p),
                    PhysFrame::new(2 + p),
                    udma_mem::Perms::READ_WRITE,
                    true,
                )
                .unwrap();
        }
        let shared = cluster.shared();
        c.attach_cluster(shared.clone());
        (c, shared)
    }

    #[test]
    fn remote_virt_dma_translates_on_the_receive_side() {
        let (mut c, cluster) = remote_virt_core();
        c.mem.borrow_mut().write_u64(PhysAddr::new(8 * PAGE_SIZE + 0x40), 0xFEED).unwrap();
        // 1.5 pages from local VA 0x40 to node 0's VA 0x40 in ASID 7.
        let id = c
            .post_virt_dma_remote(
                1,
                VirtAddr::new(0x40),
                RemoteVaTarget { node: 0, asid: 7 },
                VirtAddr::new(0x40),
                PAGE_SIZE + PAGE_SIZE / 2,
                SimTime::ZERO,
            )
            .unwrap();
        let t = *c.virt_xfer(id).unwrap();
        assert_eq!(t.state, VirtState::Complete);
        assert_eq!(t.nacks, 0);
        // The first word landed in node 0's frame 2 (VA page 0 there),
        // read back via the node's physical memory.
        assert_eq!(cluster.borrow().read_u64(0, PhysFrame::new(2).base() + 0x40).unwrap(), 0xFEED);
        // Every chunk is a remote deposit on node 0.
        for rec in c.mover().records() {
            assert_eq!(rec.remote_node, Some(0));
            assert_eq!(rec.initiator, Initiator::VirtDma { asid: 1 });
        }
    }

    #[test]
    fn remote_fault_nacks_back_and_pauses_at_the_boundary() {
        let (mut c, cluster) = remote_virt_core();
        // Node 0's VA page 1 is not mapped: second chunk faults remotely.
        cluster
            .borrow_mut()
            .node_iommu_mut(0)
            .unwrap()
            .unmap(7, udma_mem::VirtPage::new(1))
            .unwrap();
        let id = c
            .post_virt_dma_remote(
                1,
                VirtAddr::new(0),
                RemoteVaTarget { node: 0, asid: 7 },
                VirtAddr::new(0),
                2 * PAGE_SIZE,
                SimTime::ZERO,
            )
            .unwrap();
        let t = *c.virt_xfer(id).unwrap();
        assert!(matches!(t.state, VirtState::Faulted(_)));
        assert_eq!(t.moved, PAGE_SIZE, "pauses exactly at the page boundary");
        assert_eq!(t.nacks, 1);
        // NACK cost = wire latency out and back.
        let one_way = c.mover().link().latency();
        assert_eq!(t.nack_stall, one_way + one_way);
        assert!(t.stall >= t.nack_stall);
        // The fault queued on the *node*, not the local engine.
        assert_eq!(c.fault_backlog(), 0);
        assert_eq!(cluster.borrow().fault_backlog(0), 1);
        let pending = cluster.borrow_mut().pop_fault(0).unwrap();
        assert_eq!(pending.xfer, id);
        assert_eq!(pending.fault.asid, 7);
        assert_eq!(c.virt_stats().remote_faults, 1);
        assert_eq!(c.virt_stats().nacks, 1);
        // Node's OS maps the page; the sender's retry completes.
        cluster
            .borrow_mut()
            .node_iommu_mut(0)
            .unwrap()
            .map(
                7,
                udma_mem::VirtPage::new(1),
                PhysFrame::new(3),
                udma_mem::Perms::READ_WRITE,
                true,
            )
            .unwrap();
        assert_eq!(c.resume_virt(id, SimTime::from_us(10)), VirtState::Complete);
        assert_eq!(c.virt_xfer(id).unwrap().moved, 2 * PAGE_SIZE);
    }

    #[test]
    fn unserviced_remote_fault_fails_cleanly() {
        let (mut c, cluster) = remote_virt_core();
        cluster
            .borrow_mut()
            .node_iommu_mut(0)
            .unwrap()
            .unmap(7, udma_mem::VirtPage::new(1))
            .unwrap();
        let id = c
            .post_virt_dma_remote(
                1,
                VirtAddr::new(0),
                RemoteVaTarget { node: 0, asid: 7 },
                VirtAddr::new(0),
                2 * PAGE_SIZE,
                SimTime::ZERO,
            )
            .unwrap();
        let max = c.virt_config().retry.max_retries;
        let mut state = c.virt_xfer(id).unwrap().state;
        let mut resumes = 0;
        while matches!(state, VirtState::Faulted(_)) {
            state = c.resume_virt(id, SimTime::ZERO);
            resumes += 1;
            assert!(resumes <= max + 1, "remote resume loop did not terminate");
        }
        assert!(matches!(state, VirtState::Failed(_)));
        assert_eq!(c.virt_status(id, SimTime::from_us(100)), DMA_FAILURE);
        // No byte past the faulting boundary, ever.
        assert_eq!(c.virt_xfer(id).unwrap().moved, PAGE_SIZE);
        // Each fruitless retry re-NACKed over the link.
        assert_eq!(c.virt_xfer(id).unwrap().nacks, 1 + max);
    }

    #[test]
    fn remote_virt_post_requires_a_virt_enabled_node() {
        let mut c = virt_core();
        // No cluster at all.
        let err = c
            .post_virt_dma_remote(
                1,
                VirtAddr::new(0),
                RemoteVaTarget { node: 0, asid: 7 },
                VirtAddr::new(0),
                8,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, RejectReason::BadRange);
        // Cluster without enable_virt.
        c.attach_cluster(crate::Cluster::new(1, 1 << 16).shared());
        let err = c
            .post_virt_dma_remote(
                1,
                VirtAddr::new(0),
                RemoteVaTarget { node: 0, asid: 7 },
                VirtAddr::new(0),
                8,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, RejectReason::BadRange);
        assert_eq!(c.stats().rejected_for(RejectReason::BadRange), 2);
    }

    #[test]
    #[should_panic(expected = "requires enable_iommu")]
    fn virt_post_without_iommu_panics() {
        let mut c = core();
        let _ = c.post_virt_dma(0, VirtAddr::new(0), VirtAddr::new(0), 8, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "context count")]
    fn too_many_contexts_panics() {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 20)));
        let _ =
            EngineCore::new(layout, mem, EngineConfig { num_contexts: 9, ..Default::default() });
    }

    /// A virt-enabled core with rings on and a 16-slot ring registered
    /// for context 1 at physical 0x40000 (clear of the test mappings).
    fn ring_core() -> EngineCore {
        let mut c = virt_core();
        c.enable_rings(RingConfig::default());
        c.set_ring_base(1, 0x40000);
        c.set_ring_ctl(1, 16);
        c
    }

    fn local_desc(src: u64, dst: u64, len: u64) -> DmaDescriptor {
        DmaDescriptor::new(VirtAddr::new(src), DescDst::Local(VirtAddr::new(dst)), len)
    }

    #[test]
    fn ring_post_then_doorbell_launches_batch() {
        let mut c = ring_core();
        // Three sources in VA page 0, destinations in VA page 8.
        for i in 0..3u64 {
            c.mem
                .borrow_mut()
                .write_u64(PhysAddr::new(8 * PAGE_SIZE + 0x40 * i), 0xA0 + i)
                .unwrap();
            let slot =
                c.ring_post(1, &local_desc(0x40 * i, 8 * PAGE_SIZE + 0x100 * i, 8), SimTime::ZERO);
            assert_eq!(slot, Ok(i));
        }
        assert_eq!(c.ring(1).pending(), 3);
        assert_eq!(c.ring_db_load(1), 3);

        let launches = c.ring_doorbell(1, 3, SimTime::ZERO);
        assert_eq!(launches.len(), 3);
        for l in &launches {
            assert!(matches!(l, RingLaunch::Virt(_)));
        }
        assert_eq!(c.ring(1).pending(), 0);
        assert_eq!(c.ring_db_load(1), 0);
        // The bytes landed (frame 16 = dst VA page 8).
        for i in 0..3u64 {
            assert_eq!(
                c.mem.borrow().read_u64(PhysAddr::new(16 * PAGE_SIZE + 0x100 * i)).unwrap(),
                0xA0 + i
            );
        }
        let s = c.ring_stats();
        assert_eq!((s.posted, s.doorbells, s.fetched, s.launched, s.rejected), (3, 1, 3, 3, 0));
    }

    #[test]
    fn ring_fetch_latency_staggers_the_launch_clock() {
        let mut c = ring_core();
        // Remote-physical descriptors launch exactly at the ring clock
        // (no IOMMU walk costs folded into the chunk launch time).
        c.attach_cluster(crate::Cluster::new(2, 1 << 16).shared());
        for i in 0..4u64 {
            let desc = DmaDescriptor::new(
                VirtAddr::new(0x40 * i),
                DescDst::Remote { node: 1, addr: PhysAddr::new(0x400 + 0x40 * i) },
                8,
            );
            c.ring_post(1, &desc, SimTime::ZERO).unwrap();
        }
        c.ring_doorbell(1, 4, SimTime::ZERO);
        let fetch = RingConfig::default().fetch_latency;
        // Chunk k of the batch launched at (k+1)·fetch: the engine pays
        // one descriptor fetch per launch, the CPU paid one doorbell.
        let starts: Vec<SimTime> = c.mover().records().iter().map(|r| r.started).collect();
        assert_eq!(starts.len(), 4);
        for (k, s) in starts.iter().enumerate() {
            assert_eq!(*s, SimTime::from_ps(fetch.as_ps() * (k as u64 + 1)));
        }
        assert_eq!(c.ring(1).drain_until(), SimTime::from_ps(fetch.as_ps() * 4));
    }

    #[test]
    fn ring_gather_chain_deposits_contiguously() {
        let mut c = ring_core();
        // Three 8-byte fragments scattered across VA page 0.
        for (i, off) in [0x00u64, 0x200, 0x400].iter().enumerate() {
            c.mem
                .borrow_mut()
                .write_u64(PhysAddr::new(8 * PAGE_SIZE + off), 0xF0 + i as u64)
                .unwrap();
        }
        // Head in slot 0 links fragment slots 1 and 2.
        let mut head = local_desc(0x00, 8 * PAGE_SIZE, 8);
        head.flags = DESC_FLAG_CHAIN;
        head.link = Some(1);
        let mut f1 = local_desc(0x200, 0, 8);
        f1.flags = DESC_FLAG_FRAG;
        f1.link = Some(2);
        let mut f2 = local_desc(0x400, 0, 8);
        f2.flags = DESC_FLAG_FRAG;
        c.ring_post(1, &head, SimTime::ZERO).unwrap();
        c.ring_post(1, &f1, SimTime::ZERO).unwrap();
        c.ring_post(1, &f2, SimTime::ZERO).unwrap();
        // A plain descriptor after the chain: the main scan must skip
        // the consumed fragment slots and still launch this one.
        c.mem.borrow_mut().write_u64(PhysAddr::new(8 * PAGE_SIZE + 0x600), 0x99).unwrap();
        c.ring_post(1, &local_desc(0x600, 8 * PAGE_SIZE + 0x800, 8), SimTime::ZERO).unwrap();

        let launches = c.ring_doorbell(1, 4, SimTime::ZERO);
        // 3 gather fragments + 1 plain launch; no rejects.
        assert_eq!(launches.len(), 4);
        assert!(launches.iter().all(|l| matches!(l, RingLaunch::Virt(_))));
        // The gather landed contiguously at the head's destination.
        for i in 0..3u64 {
            assert_eq!(
                c.mem.borrow().read_u64(PhysAddr::new(16 * PAGE_SIZE + 8 * i)).unwrap(),
                0xF0 + i
            );
        }
        assert_eq!(c.mem.borrow().read_u64(PhysAddr::new(16 * PAGE_SIZE + 0x800)).unwrap(), 0x99);
        let s = c.ring_stats();
        assert_eq!((s.fetched, s.launched, s.chained, s.rejected), (4, 4, 2, 0));
        assert_eq!(c.ring(1).pending(), 0);
    }

    #[test]
    fn ring_full_and_unregistered_posts_reject() {
        let mut c = ring_core();
        // Context 0 has no ring registered.
        let err = c.ring_post(0, &local_desc(0, 8 * PAGE_SIZE, 8), SimTime::ZERO).unwrap_err();
        assert_eq!(err, RejectReason::RingFull);
        // Fill context 1's 16 slots; the 17th post bounces.
        for _ in 0..16 {
            c.ring_post(1, &local_desc(0, 8 * PAGE_SIZE, 8), SimTime::ZERO).unwrap();
        }
        let err = c.ring_post(1, &local_desc(0, 8 * PAGE_SIZE, 8), SimTime::ZERO).unwrap_err();
        assert_eq!(err, RejectReason::RingFull);
        assert_eq!(c.stats().rejected_for(RejectReason::RingFull), 2);
        // Deregister: further doorbells reject too.
        c.set_ring_ctl(1, 0);
        assert!(!c.ring(1).registered());
        assert!(c.ring_doorbell(1, 16, SimTime::ZERO).is_empty());
        assert_eq!(c.stats().rejected_for(RejectReason::RingFull), 3);
    }

    #[test]
    fn ring_remote_phys_descriptor_translates_source_only() {
        let mut c = ring_core();
        let cluster = crate::Cluster::new(2, 1 << 16).shared();
        c.attach_cluster(cluster.clone());
        c.mem.borrow_mut().write_u64(PhysAddr::new(8 * PAGE_SIZE), 0x5151).unwrap();
        let desc = DmaDescriptor::new(
            VirtAddr::new(0),
            DescDst::Remote { node: 1, addr: PhysAddr::new(0x400) },
            8,
        );
        c.ring_post(1, &desc, SimTime::ZERO).unwrap();
        let launches = c.ring_doorbell(1, 1, SimTime::ZERO);
        assert!(matches!(launches[..], [RingLaunch::Phys(_)]));
        assert_eq!(cluster.borrow().read_u64(1, PhysAddr::new(0x400)).unwrap(), 0x5151);
        // An unmapped source VA is rejected at dequeue, never launched.
        let bad = DmaDescriptor::new(
            VirtAddr::new(64 * PAGE_SIZE),
            DescDst::Remote { node: 1, addr: PhysAddr::new(0x800) },
            8,
        );
        c.ring_post(1, &bad, SimTime::ZERO).unwrap();
        let launches = c.ring_doorbell(1, 2, SimTime::ZERO);
        assert!(matches!(launches[..], [RingLaunch::Rejected(RejectReason::BadRange)]));
        assert_eq!(c.ring_stats().rejected, 1);
    }

    #[test]
    fn save_refused_while_ring_pending_then_spills_with_image() {
        let mut c = ring_core();
        c.set_key(1, 0x1234);
        c.ring_post(1, &local_desc(0, 8 * PAGE_SIZE, 64), SimTime::ZERO).unwrap();
        // Posted but undoorbelled work pins the context.
        assert!(c.context_busy(1, SimTime::ZERO));
        assert_eq!(c.save_context(1, SimTime::ZERO), Err(CtxBusy::RingPending));
        assert_eq!(c.ctx_stats().busy_denials, 1);

        c.ring_doorbell(1, 1, SimTime::ZERO);
        // Immediately after the doorbell the batch is still draining.
        assert_eq!(c.save_context(1, SimTime::ZERO), Err(CtxBusy::RingPending));

        // Once quiescent, the spill carries the ring registration…
        let later = SimTime::from_us(100_000);
        let image = c.save_context(1, later).unwrap();
        let ring = image.ring.unwrap();
        assert_eq!((ring.base, ring.capacity, ring.cursor), (0x40000, 16, 1));
        // …and the evicted slot no longer decodes doorbells.
        assert!(!c.ring(1).registered());
        assert!(c.ring_doorbell(1, 5, later).is_empty());

        // Restore into another slot: cursors converge, ring re-arms.
        c.restore_context(2, &image);
        assert!(c.ring(2).registered());
        assert_eq!(c.ring(2).head(), 1);
        assert_eq!(c.ring(2).posted(), 1);
        c.iommu_mut().unwrap().create_context(2);
        c.iommu_mut()
            .unwrap()
            .map(
                2,
                udma_mem::VirtPage::new(0),
                PhysFrame::new(8),
                udma_mem::Perms::READ_WRITE,
                true,
            )
            .unwrap();
        c.iommu_mut()
            .unwrap()
            .map(
                2,
                udma_mem::VirtPage::new(8),
                PhysFrame::new(16),
                udma_mem::Perms::READ_WRITE,
                true,
            )
            .unwrap();
        c.ring_post(2, &local_desc(0x8, 8 * PAGE_SIZE + 0x8, 8), later).unwrap();
        let launches = c.ring_doorbell(2, 2, later);
        assert!(matches!(launches[..], [RingLaunch::Virt(_)]));
    }

    #[test]
    #[should_panic(expected = "require enable_iommu")]
    fn rings_without_iommu_panic() {
        let mut c = core();
        c.enable_rings(RingConfig::default());
    }
}
