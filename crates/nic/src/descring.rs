//! Doorbell-batched descriptor rings: amortizing DMA initiation cost.
//!
//! Every initiation scheme in the paper pays its full register-write /
//! protection-check sequence *per transfer* — the NI accepts exactly one
//! in-flight request per context. A descriptor ring turns that cost
//! structure around: user code writes N [`DmaDescriptor`]s into an
//! in-memory ring (plain cached stores), then *rings a doorbell* with a
//! single user-level store to its context page. The engine dequeues the
//! descriptors back-to-back, translating and launching each one, so the
//! expensive uncached device access is paid once per batch instead of
//! once per transfer; only the (cheap) per-descriptor memory fetch
//! scales with N.
//!
//! Protection still holds per descriptor, through the same §3.2 grant
//! path as everything else:
//! * the ring itself is registered by the **OS** (privileged
//!   `RING_BASE_TABLE` / `RING_CTL_TABLE` writes) against a window the
//!   OS validated inside the process's own mapped buffer;
//! * descriptors carry **virtual** addresses, translated at dequeue
//!   time by the engine's IOMMU under the posting context's ASID — a
//!   descriptor naming memory the process cannot access faults exactly
//!   like a mis-addressed `CTX_VIRT_*` post;
//! * the doorbell is a store to the process's own context page, so the
//!   §3.1 one-page-per-process mapping keeps contexts apart.
//!
//! Scatter/gather: a descriptor with [`DESC_FLAG_CHAIN`] heads a linked
//! chain of [`DESC_FLAG_FRAG`] slots; the engine walks the chain and
//! deposits every fragment at the head's destination plus the
//! accumulated offset — one doorbell, one destination, many fragments.

use crate::status::RejectReason;
use udma_bus::SimTime;
use udma_iommu::Asid;
use udma_mem::{PhysAddr, VirtAddr};

/// Words per in-memory descriptor.
pub const DESC_WORDS: usize = 4;
/// Bytes per in-memory descriptor (slot stride in the ring).
pub const DESC_BYTES: u64 = 8 * DESC_WORDS as u64;

/// Descriptor flag: this descriptor heads a scatter/gather chain; its
/// `link` names the next fragment slot.
pub const DESC_FLAG_CHAIN: u64 = 1 << 0;
/// Descriptor flag: this slot is a fragment of a chain. The main
/// dequeue scan skips it; only a chain walk consumes it.
pub const DESC_FLAG_FRAG: u64 = 1 << 1;

const KIND_LOCAL: u64 = 0;
const KIND_REMOTE_PHYS: u64 = 1;
const KIND_REMOTE_VIRT: u64 = 2;

const FLAG_SHIFT: u32 = 2;
const FLAG_MASK: u64 = 0b11;
const NODE_SHIFT: u32 = 4;
const ASID_SHIFT: u32 = 20;
const LINK_SHIFT: u32 = 36;
const FIELD_MASK: u64 = 0xFFFF;

/// Where a descriptor's data lands — the in-memory mirror of every
/// destination kind the register paths accept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DescDst {
    /// A local virtual address, translated by this engine's IOMMU under
    /// the posting context's ASID.
    Local(VirtAddr),
    /// A *physical* address on a remote node — the SHRIMP-1-style
    /// pre-proved destination; only the source needs translation.
    Remote {
        /// Destination node within the cluster.
        node: u32,
        /// Physical address in that node's memory.
        addr: PhysAddr,
    },
    /// A virtual address on a remote node, translated there by the
    /// receive-side IOMMU (the `CTX_VIRT_*` remote path).
    RemoteVirt {
        /// Destination node within the cluster.
        node: u32,
        /// Address space on that node.
        asid: Asid,
        /// Destination VA in that address space.
        va: VirtAddr,
    },
}

/// One user-posted DMA descriptor: what a single keyed register
/// sequence would have carried, as four memory words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaDescriptor {
    /// Source virtual address (translated at dequeue under the posting
    /// context's ASID).
    pub src: VirtAddr,
    /// Destination (any kind the register paths accept).
    pub dst: DescDst,
    /// Bytes to transfer.
    pub len: u64,
    /// [`DESC_FLAG_CHAIN`] | [`DESC_FLAG_FRAG`].
    pub flags: u64,
    /// Ring slot of the next fragment when chaining (`flags` must carry
    /// [`DESC_FLAG_CHAIN`] on the head or [`DESC_FLAG_FRAG`] mid-chain).
    pub link: Option<u32>,
}

impl DmaDescriptor {
    /// A plain single-transfer descriptor.
    pub fn new(src: VirtAddr, dst: DescDst, len: u64) -> Self {
        DmaDescriptor { src, dst, len, flags: 0, link: None }
    }

    /// Encodes the descriptor into its four in-memory words:
    /// `[src, dst, len, ctl]` where `ctl` packs kind, flags, node, asid
    /// and the (link+1) slot index.
    ///
    /// # Panics
    ///
    /// Panics if a node, asid or link index overflows its 16-bit field.
    pub fn encode(&self) -> [u64; DESC_WORDS] {
        let (kind, dst_word, node, asid) = match self.dst {
            DescDst::Local(va) => (KIND_LOCAL, va.as_u64(), 0, 0),
            DescDst::Remote { node, addr } => (KIND_REMOTE_PHYS, addr.as_u64(), node as u64, 0),
            DescDst::RemoteVirt { node, asid, va } => {
                (KIND_REMOTE_VIRT, va.as_u64(), node as u64, asid as u64)
            }
        };
        assert!(node <= FIELD_MASK, "node id too wide for a descriptor");
        assert!(asid <= FIELD_MASK, "asid too wide for a descriptor");
        let link = match self.link {
            None => 0,
            Some(slot) => {
                assert!((slot as u64) < FIELD_MASK, "link slot too wide for a descriptor");
                slot as u64 + 1
            }
        };
        let ctl = kind
            | ((self.flags & FLAG_MASK) << FLAG_SHIFT)
            | (node << NODE_SHIFT)
            | (asid << ASID_SHIFT)
            | (link << LINK_SHIFT);
        [self.src.as_u64(), dst_word, self.len, ctl]
    }

    /// Decodes four in-memory words back into a descriptor. `None` when
    /// the kind field is not a destination the engine knows.
    pub fn decode(words: [u64; DESC_WORDS]) -> Option<Self> {
        let [src, dst_word, len, ctl] = words;
        let node = ((ctl >> NODE_SHIFT) & FIELD_MASK) as u32;
        let asid = ((ctl >> ASID_SHIFT) & FIELD_MASK) as Asid;
        let dst = match ctl & 0b11 {
            KIND_LOCAL => DescDst::Local(VirtAddr::new(dst_word)),
            KIND_REMOTE_PHYS => DescDst::Remote { node, addr: PhysAddr::new(dst_word) },
            KIND_REMOTE_VIRT => DescDst::RemoteVirt { node, asid, va: VirtAddr::new(dst_word) },
            _ => return None,
        };
        let link_raw = (ctl >> LINK_SHIFT) & FIELD_MASK;
        Some(DmaDescriptor {
            src: VirtAddr::new(src),
            dst,
            len,
            flags: (ctl >> FLAG_SHIFT) & FLAG_MASK,
            link: link_raw.checked_sub(1).map(|s| s as u32),
        })
    }
}

/// Engine-side ring tunables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingConfig {
    /// Engine-side latency of fetching one descriptor from host memory
    /// (one device-initiated memory read of a slot). Charged to the
    /// *launch clock* of each dequeued descriptor — the CPU has long
    /// since moved on; this is where the amortization asymptote comes
    /// from.
    pub fetch_latency: SimTime,
}

impl Default for RingConfig {
    fn default() -> Self {
        // One TurboChannel-priced read of the 32-byte slot.
        RingConfig { fetch_latency: SimTime::from_ns(480) }
    }
}

/// Counters of the descriptor-ring unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Descriptors posted through the engine-side post helper.
    pub posted: u64,
    /// Doorbell stores decoded.
    pub doorbells: u64,
    /// Descriptor slots fetched from host memory.
    pub fetched: u64,
    /// Transfers launched from dequeued descriptors (fragments count).
    pub launched: u64,
    /// Fragments launched as part of scatter/gather chains.
    pub chained: u64,
    /// Descriptors refused (undecodable, bad chain, or launch reject).
    pub rejected: u64,
}

/// What one dequeued descriptor (or chain fragment) became.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingLaunch {
    /// Launched as a virtual-address transfer (id into the engine's
    /// virt-transfer table — poll [`crate::EngineCore::virt_status`]).
    Virt(usize),
    /// Launched as a physical transfer (mover record index).
    Phys(usize),
    /// Refused; the reason is also counted in the engine stats.
    Rejected(RejectReason),
}

/// Per-context ring state, as the engine tracks it. The descriptors
/// themselves live in *host memory* (a window of the owning process's
/// own buffer, validated and registered by the OS); the engine holds
/// only the base, geometry and cursors.
#[derive(Clone, Debug, Default)]
pub struct DescRing {
    /// Host-physical base of slot 0.
    pub(crate) base: PhysAddr,
    /// Slots in the ring (0 = not registered).
    pub(crate) capacity: u32,
    /// Absolute index of the next slot the engine will fetch.
    pub(crate) head: u64,
    /// Absolute index one past the last posted slot (tracked by the
    /// engine-side post helper; a raw doorbell advances it too).
    pub(crate) posted: u64,
    /// Relative slots already consumed as chain fragments — the main
    /// dequeue scan skips (and clears) them.
    pub(crate) consumed: Vec<bool>,
    /// When the last dequeued batch finishes launching (fetch-staggered
    /// launch clock of the final descriptor).
    pub(crate) drain_until: SimTime,
    /// Live virtual transfers launched from this ring.
    pub(crate) live_virt: Vec<usize>,
    /// Live physical transfers (mover record indices) launched from
    /// this ring.
    pub(crate) live_phys: Vec<usize>,
}

impl DescRing {
    /// Whether a ring is registered for this context.
    pub fn registered(&self) -> bool {
        self.capacity > 0
    }

    /// Host-physical base of slot 0.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Absolute index of the next slot the engine will fetch.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Absolute index one past the last posted slot.
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Descriptors posted but not yet doorbelled/dequeued.
    pub fn pending(&self) -> u64 {
        self.posted - self.head
    }

    /// When the last dequeued batch finishes launching.
    pub fn drain_until(&self) -> SimTime {
        self.drain_until
    }

    /// Host-physical address of relative slot `rel`.
    pub fn slot_addr(&self, rel: u32) -> PhysAddr {
        PhysAddr::new(self.base.as_u64() + rel as u64 * DESC_BYTES)
    }
}

/// A quiescent ring's registration, carried by a spilled
/// [`crate::CtxImage`]: enough to reinstall the ring bit-for-bit at
/// refill. Only quiescent rings spill — [`crate::EngineCore::save_context`]
/// refuses while descriptors are pending or launched work is live — so
/// the cursor is the whole dynamic state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingImage {
    /// Host-physical base of slot 0.
    pub base: u64,
    /// Slots in the ring.
    pub capacity: u32,
    /// The (converged) head = posted cursor.
    pub cursor: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_all_kinds() {
        let descs = [
            DmaDescriptor::new(VirtAddr::new(0x1000), DescDst::Local(VirtAddr::new(0x9000)), 64),
            DmaDescriptor {
                src: VirtAddr::new(0x2000),
                dst: DescDst::Remote { node: 3, addr: PhysAddr::new(0x4000) },
                len: 128,
                flags: DESC_FLAG_CHAIN,
                link: Some(5),
            },
            DmaDescriptor {
                src: VirtAddr::new(0x3000),
                dst: DescDst::RemoteVirt { node: 1, asid: 7, va: VirtAddr::new(0x8000) },
                len: 8,
                flags: DESC_FLAG_FRAG,
                link: None,
            },
        ];
        for d in descs {
            assert_eq!(DmaDescriptor::decode(d.encode()), Some(d), "{d:?}");
        }
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        assert_eq!(DmaDescriptor::decode([0, 0, 8, 0b11]), None);
    }

    #[test]
    fn link_zero_is_distinct_from_none() {
        let d = DmaDescriptor {
            src: VirtAddr::new(0),
            dst: DescDst::Local(VirtAddr::new(0)),
            len: 8,
            flags: DESC_FLAG_CHAIN,
            link: Some(0),
        };
        assert_eq!(DmaDescriptor::decode(d.encode()).unwrap().link, Some(0));
        let plain = DmaDescriptor::new(VirtAddr::new(0), DescDst::Local(VirtAddr::new(0)), 8);
        assert_eq!(DmaDescriptor::decode(plain.encode()).unwrap().link, None);
    }

    #[test]
    fn ring_geometry() {
        let r = DescRing { base: PhysAddr::new(0x8000), capacity: 16, ..DescRing::default() };
        assert!(r.registered());
        assert_eq!(r.slot_addr(0), PhysAddr::new(0x8000));
        assert_eq!(r.slot_addr(3), PhysAddr::new(0x8000 + 3 * DESC_BYTES));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "node id")]
    fn encode_wide_node_panics() {
        let d = DmaDescriptor::new(
            VirtAddr::new(0),
            DescDst::Remote { node: 0x1_0000, addr: PhysAddr::new(0) },
            8,
        );
        let _ = d.encode();
    }
}
