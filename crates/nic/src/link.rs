//! The network link the DMA engine transfers over.

use udma_bus::SimTime;

/// A point-to-point link with fixed bandwidth and latency.
///
/// Used to model the *data transfer* half of the paper's motivation: "the
/// operating system overhead keeps getting an ever-increasing percentage
/// of the DMA transfer time, while the time for the data transfer per se
/// continues to decrease" (§2.2). The presets are the networks the paper
/// names: 155/622 Mb/s ATM and gigabit LANs, plus 10 Mb/s Ethernet as the
/// previous-decade baseline.
///
/// ```
/// use udma_nic::LinkModel;
///
/// let link = LinkModel::gigabit();
/// // A 4 KiB page takes its latency plus ~33 µs of serialisation.
/// assert!(link.transfer_time(4096) > link.latency());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkModel {
    bits_per_second: u64,
    latency: SimTime,
    name: &'static str,
}

impl LinkModel {
    /// Creates a custom link.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_second` is zero.
    pub fn new(name: &'static str, bits_per_second: u64, latency: SimTime) -> Self {
        assert!(bits_per_second > 0, "link bandwidth must be nonzero");
        LinkModel { bits_per_second, latency, name }
    }

    /// 10 Mb/s Ethernet.
    pub fn ethernet10() -> Self {
        LinkModel::new("Ethernet 10Mb/s", 10_000_000, SimTime::from_us(50))
    }

    /// 155 Mb/s ATM ("common today", 1997).
    pub fn atm155() -> Self {
        LinkModel::new("ATM 155Mb/s", 155_000_000, SimTime::from_us(10))
    }

    /// 622 Mb/s ATM ("will soon be upgraded to").
    pub fn atm622() -> Self {
        LinkModel::new("ATM 622Mb/s", 622_000_000, SimTime::from_us(8))
    }

    /// Gigabit LAN ("have already started to appear in the market").
    pub fn gigabit() -> Self {
        LinkModel::new("Gigabit LAN", 1_000_000_000, SimTime::from_us(5))
    }

    /// Name of the preset.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bandwidth in bits per second.
    pub fn bits_per_second(&self) -> u64 {
        self.bits_per_second
    }

    /// Fixed per-transfer latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Wire time for a transfer of `bytes` (latency + serialisation).
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let ps = (bytes as u128 * 8 * 1_000_000_000_000u128) / self.bits_per_second as u128;
        self.latency + SimTime::from_ps(ps as u64)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::atm155()
    }
}

/// Bounded retry with exponential backoff — the one policy shared by
/// every layer that retries over the link: the virtual-address unit's
/// fruitless-resume budget and the go-back-N retransmit path both
/// consult the same struct, so the constants live in exactly one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive fruitless attempts allowed before giving up. The
    /// counter resets whenever the layer makes byte progress.
    pub max_retries: u32,
    /// Base backoff; doubles on each consecutive fruitless attempt.
    pub backoff: SimTime,
}

impl RetryPolicy {
    /// A policy with `max_retries` attempts starting at `backoff`.
    pub fn new(max_retries: u32, backoff: SimTime) -> Self {
        RetryPolicy { max_retries, backoff }
    }

    /// The stall charged before fruitless attempt number `attempt`
    /// (0-based): `backoff << attempt`, shift capped so the arithmetic
    /// never overflows.
    pub fn backoff_after(&self, attempt: u32) -> SimTime {
        SimTime::from_ps(self.backoff.as_ps() << attempt.min(16))
    }

    /// Whether `retries` consecutive fruitless attempts exhaust the
    /// budget.
    pub fn exhausted(&self, retries: u32) -> bool {
        retries >= self.max_retries
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff: SimTime::from_us(2) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_serialisation_time() {
        let l = LinkModel::new("t", 1_000_000_000, SimTime::ZERO);
        // 125 bytes = 1000 bits = 1 µs at 1 Gb/s.
        assert_eq!(l.transfer_time(125), SimTime::from_us(1));
    }

    #[test]
    fn latency_added_once() {
        let l = LinkModel::new("t", 1_000_000_000, SimTime::from_us(5));
        assert_eq!(l.transfer_time(0), SimTime::from_us(5));
    }

    #[test]
    fn faster_links_transfer_faster() {
        let b = 64 * 1024;
        assert!(LinkModel::gigabit().transfer_time(b) < LinkModel::atm622().transfer_time(b));
        assert!(LinkModel::atm622().transfer_time(b) < LinkModel::atm155().transfer_time(b));
        assert!(LinkModel::atm155().transfer_time(b) < LinkModel::ethernet10().transfer_time(b));
    }

    #[test]
    fn default_is_atm155() {
        assert_eq!(LinkModel::default(), LinkModel::atm155());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bandwidth_panics() {
        let _ = LinkModel::new("t", 0, SimTime::ZERO);
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy::new(3, SimTime::from_us(2));
        assert_eq!(p.backoff_after(0), SimTime::from_us(2));
        assert_eq!(p.backoff_after(1), SimTime::from_us(4));
        assert_eq!(p.backoff_after(2), SimTime::from_us(8));
        // The shift saturates at 16 rather than overflowing.
        assert_eq!(p.backoff_after(40), p.backoff_after(16));
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        assert!(p.exhausted(4));
    }
}
