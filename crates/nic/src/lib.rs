//! The network interface / DMA engine of the paper's prototype board.
//!
//! "All the logic is contained in a single FPGA that is directly
//! accessible from user applications via shadow addressing" (§3.4). This
//! crate is that FPGA:
//!
//! * a privileged register window ([`regs`]) the kernel uses for classic
//!   kernel-level DMA (Figure 1), FLASH current-pid notification, SHRIMP
//!   aborts, key programming and kernel-path atomic operations;
//! * per-process **register contexts** ([`RegisterContext`]) mapped one
//!   per page so the OS can hand each to a single process (§3.1);
//! * the **shadow window** decode and one [`InitiationProtocol`] state
//!   machine per scheme in the paper: SHRIMP-1 mapped-out pages, SHRIMP-2
//!   store+load, FLASH, key-based (§3.1), extended shadow addressing
//!   (§3.2) and repeated passing of arguments in its 3-, 4- and
//!   5-instruction variants (§3.3);
//! * the [`DmaMover`], which validates and performs transfers and models
//!   their completion time over a configurable [`LinkModel`];
//! * the [`AtomicOp`] unit of §3.5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod context;
mod crash;
mod descring;
mod engine;
#[path = "core.rs"]
mod engine_core;
mod faulty;
mod health;
mod link;
mod mover;
mod net;
pub mod protocol;
pub mod regs;
mod remote;
mod status;
mod virt;

pub use atomic::AtomicOp;
pub use context::{CtxBusy, CtxImage, CtxStats, RegisterContext};
pub use crash::{CrashKind, CrashPlan, CrashStats};
pub use descring::{
    DescDst, DescRing, DmaDescriptor, RingConfig, RingImage, RingLaunch, RingStats, DESC_BYTES,
    DESC_FLAG_CHAIN, DESC_FLAG_FRAG, DESC_WORDS,
};
pub use engine::DmaEngine;
pub use engine_core::{EngineConfig, EngineCore, EngineStats, LaunchDst};
pub use faulty::{
    crc32, deliver, Burst, ControlFate, DeliveryOutcome, FaultPlan, FaultyLink, FaultyLinkStats,
    FrameFate, ReliabilityConfig, MAX_BURSTS,
};
pub use health::{HealthConfig, HealthState, HealthStats, PeerHealth};
pub use link::{LinkModel, RetryPolicy};
pub use mover::{DmaMover, RemoteDst, TransferRecord};
pub use net::{Envelope, NackVerdict, NetMsg, SendXfer, XferCounters, XferId, XferState};
pub use protocol::{InitiationProtocol, ProtocolKind};
pub use remote::{
    Cluster, Destination, DstAnnouncement, NodeLinkStats, RemoteError, SharedCluster,
};
pub use status::{
    Initiator, RejectReason, DMA_FAILURE, DMA_LINK_DOWN, DMA_LINK_FAILED, DMA_NODE_DOWN,
    DMA_PENDING, DMA_STARTED,
};
pub use virt::{
    PendingFault, PrefetchConfig, RemoteVaTarget, VirtDmaConfig, VirtStage, VirtState, VirtStats,
    VirtTransfer,
};
