//! The DMA data mover: validates and performs transfers.

use crate::faulty::{
    deliver, DeliveryOutcome, FaultPlan, FaultyLink, FaultyLinkStats, ReliabilityConfig,
};
use crate::{Destination, Initiator, LinkModel, RejectReason, SharedCluster};
use udma_bus::{SharedCoherence, SharedMemory, SimTime};
use udma_mem::{PhysAddr, PAGE_SIZE};

/// A transfer the mover performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferRecord {
    /// Source physical address.
    pub src: PhysAddr,
    /// Destination physical address (on the remote node when
    /// `remote_node` is set).
    pub dst: PhysAddr,
    /// Cluster node the bytes were deposited on, if not local.
    pub remote_node: Option<u32>,
    /// Bytes transferred.
    pub size: u64,
    /// When the transfer was started.
    pub started: SimTime,
    /// When the last byte arrives (per the link model).
    pub finished: SimTime,
    /// Who initiated it.
    pub initiator: Initiator,
}

/// Destination of a cross-link deposit: a physical address on a
/// specific cluster node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteDst {
    /// Receiving node's index within the cluster.
    pub node: u32,
    /// Physical address in that node's memory.
    pub addr: PhysAddr,
}

impl TransferRecord {
    /// Where the transfer landed.
    pub fn destination(&self) -> Destination {
        match self.remote_node {
            Some(node) => Destination::Remote { node, addr: self.dst },
            None => Destination::Local(self.dst),
        }
    }

    /// Bytes still in flight at time `now` (linear wire model; 0 once the
    /// transfer has finished). This is what a register-context status
    /// load returns: "the number of bytes that need to be transferred
    /// yet" (§3.1).
    pub fn remaining_at(&self, now: SimTime) -> u64 {
        if now >= self.finished {
            return 0;
        }
        let total = (self.finished - self.started).as_ps().max(1);
        let left = (self.finished - now).as_ps();
        ((self.size as u128 * left as u128).div_ceil(total as u128)) as u64
    }
}

/// Performs transfers against shared physical memory, records them, and
/// models their completion times over a [`LinkModel`].
///
/// Data is copied eagerly (the simulation needs memory to be consistent
/// immediately); only *timing* is spread over the wire. The paper's own
/// evaluation never overlaps transfers with initiations ("no DMA data
/// transfer was actually performed. Only the DMA arguments were passed",
/// §3.4 footnote), so eager copy changes nothing observable.
#[derive(Clone, Debug)]
pub struct DmaMover {
    mem: SharedMemory,
    link: LinkModel,
    cluster: Option<SharedCluster>,
    records: Vec<TransferRecord>,
    /// Chaos wrapper over the cluster link. While attached, every
    /// remote transfer runs the go-back-N reliability protocol instead
    /// of the ideal wire.
    faulty: Option<FaultyLink>,
    reliability: ReliabilityConfig,
    /// Outcome of the most recent reliable remote transfer (None when
    /// the ideal wire carried it).
    last_delivery: Option<DeliveryOutcome>,
    /// When attached, the engine is a *coherent* bus master: every read
    /// snoops Modified lines out of the CPU caches and every write
    /// invalidates them. Unattached (the non-coherent mode), the engine
    /// reads and writes raw memory and software must flush around it.
    coherence: Option<SharedCoherence>,
    /// Total snoop time the engine's transfers have paid.
    snoop_time: SimTime,
}

impl DmaMover {
    /// Creates a mover over the machine's memory and link.
    pub fn new(mem: SharedMemory, link: LinkModel) -> Self {
        DmaMover {
            mem,
            link,
            cluster: None,
            records: Vec::new(),
            faulty: None,
            reliability: ReliabilityConfig::default(),
            last_delivery: None,
            coherence: None,
            snoop_time: SimTime::ZERO,
        }
    }

    /// Makes the engine a snooping (coherent) bus master: transfers pull
    /// Modified lines via intervention on the read side and invalidate
    /// holders on the write side, with the extra time folded into each
    /// record's completion.
    pub fn attach_coherence(&mut self, coherence: SharedCoherence) {
        self.coherence = Some(coherence);
    }

    /// Whether the engine snoops the coherence bus.
    pub fn is_coherent(&self) -> bool {
        self.coherence.is_some()
    }

    /// Total snoop time the engine's transfers have paid (zero when not
    /// coherent).
    pub fn snoop_time(&self) -> SimTime {
        self.snoop_time
    }

    /// Attaches the cluster of remote nodes reachable over the link.
    pub fn attach_cluster(&mut self, cluster: SharedCluster) {
        self.cluster = Some(cluster);
    }

    /// Wraps the cluster link in seeded chaos: from now on every remote
    /// transfer is framed, checksummed and carried by go-back-N across
    /// the faults `plan` scripts.
    pub fn attach_chaos(&mut self, plan: FaultPlan) {
        self.faulty = Some(FaultyLink::new(plan));
    }

    /// Sets the reliability tunables (framing, window, timeouts).
    pub fn set_reliability(&mut self, rel: ReliabilityConfig) {
        self.reliability = rel;
    }

    /// The reliability tunables in force.
    pub fn reliability(&self) -> ReliabilityConfig {
        self.reliability
    }

    /// Whether a chaos plan wraps the link.
    pub fn has_chaos(&self) -> bool {
        self.faulty.is_some()
    }

    /// Everything the chaos link has done, if one is attached.
    pub fn chaos_stats(&self) -> Option<FaultyLinkStats> {
        self.faulty.as_ref().map(|f| f.stats())
    }

    /// Mutable chaos link (the engine consults it for control-message
    /// fates).
    pub fn chaos_mut(&mut self) -> Option<&mut FaultyLink> {
        self.faulty.as_mut()
    }

    /// Outcome of the most recent remote transfer that ran the
    /// reliability protocol (None when the ideal wire carried it).
    pub fn last_delivery(&self) -> Option<DeliveryOutcome> {
        self.last_delivery
    }

    /// The attached cluster, if any.
    pub fn cluster(&self) -> Option<SharedCluster> {
        self.cluster.clone()
    }

    /// The link model in force.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Validates and performs a transfer.
    ///
    /// `multipage_ok` is true only for the kernel path, which has checked
    /// the entire range page by page (Figure 1's `check_size`); the
    /// user-level protocols prove access to a single page per shadow
    /// address, so their transfers must not cross page boundaries.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`] explaining why nothing was transferred.
    pub fn start(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        size: u64,
        initiator: Initiator,
        multipage_ok: bool,
        now: SimTime,
    ) -> Result<&TransferRecord, RejectReason> {
        if size == 0 {
            return Err(RejectReason::ZeroSize);
        }
        if !multipage_ok {
            let crosses = |a: PhysAddr| (a.as_u64() % PAGE_SIZE) + size > PAGE_SIZE;
            if crosses(src) || crosses(dst) {
                return Err(RejectReason::PageCross);
            }
        }
        {
            let limit = self.mem.borrow().size();
            let ok = |a: PhysAddr| a.as_u64().checked_add(size).is_some_and(|e| e <= limit);
            if !ok(src) || !ok(dst) {
                return Err(RejectReason::BadRange);
            }
        }
        let snoop = match &self.coherence {
            // Coherent engine: the read side intervenes on Modified
            // lines, the write side invalidates holders; both charge
            // extra wire time on this record.
            Some(domain) => {
                let mut buf = vec![0u8; size as usize];
                let mut d = domain.borrow_mut();
                let r = d.dma_read(src, &mut buf).map_err(|_| RejectReason::BadRange)?;
                let w = d.dma_write(dst, &buf).map_err(|_| RejectReason::BadRange)?;
                r + w
            }
            None => {
                self.mem.borrow_mut().copy(src, dst, size).map_err(|_| RejectReason::BadRange)?;
                SimTime::ZERO
            }
        };
        self.snoop_time += snoop;
        let rec = TransferRecord {
            src,
            dst,
            remote_node: None,
            size,
            started: now,
            finished: now + self.link.transfer_time(size) + snoop,
            initiator,
        };
        self.records.push(rec);
        Ok(self.records.last().expect("just pushed"))
    }

    /// Validates and performs a transfer whose destination is a page on a
    /// remote cluster node (SHRIMP-1's mapped-out pages, §2.4). Source
    /// rules are as for [`start`](Self::start): `multipage_ok` is true
    /// only when the caller has validated every page of both ranges
    /// (the kernel path, or the virt engine's coalescer after proving
    /// the pages physically contiguous on both ends); otherwise the
    /// deposit is bounded to one page on each side.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`] explaining why nothing was transferred
    /// (`BadRange` also covers a missing cluster or node).
    pub fn start_remote(
        &mut self,
        src: PhysAddr,
        dst: RemoteDst,
        size: u64,
        initiator: Initiator,
        multipage_ok: bool,
        now: SimTime,
    ) -> Result<&TransferRecord, RejectReason> {
        let RemoteDst { node, addr } = dst;
        if size == 0 {
            return Err(RejectReason::ZeroSize);
        }
        if !multipage_ok {
            let crosses = |a: PhysAddr| (a.as_u64() % PAGE_SIZE) + size > PAGE_SIZE;
            if crosses(src) || crosses(addr) {
                return Err(RejectReason::PageCross);
            }
        }
        let mut buf = vec![0u8; size as usize];
        // Source-side snoop: a remote post must not ship bytes the CPU
        // still holds Modified. (The destination node's coherence is the
        // receiver's problem.)
        let src_snoop = match &self.coherence {
            Some(domain) => {
                domain.borrow_mut().dma_read(src, &mut buf).map_err(|_| RejectReason::BadRange)?
            }
            None => {
                self.mem.borrow().read_bytes(src, &mut buf).map_err(|_| RejectReason::BadRange)?;
                SimTime::ZERO
            }
        };
        self.snoop_time += src_snoop;
        let cluster = self.cluster.as_ref().ok_or(RejectReason::BadRange)?;
        self.last_delivery = None;
        let (deposited, finished) = match &mut self.faulty {
            // Chaos attached: the go-back-N layer frames, checksums and
            // retransmits; only the in-order prefix the receiver acked
            // is deposited, and the sender's clock carries every
            // retransmission and stall.
            Some(faulty) => {
                let (outcome, bytes) = deliver(&self.link, &self.reliability, faulty, &buf);
                if !bytes.is_empty() {
                    cluster
                        .borrow_mut()
                        .deposit(node, addr, &bytes)
                        .map_err(|_| RejectReason::BadRange)?;
                }
                cluster.borrow_mut().note_delivery(node, &outcome);
                self.last_delivery = Some(outcome);
                (outcome.delivered, now + outcome.elapsed + src_snoop)
            }
            None => {
                cluster
                    .borrow_mut()
                    .deposit(node, addr, &buf)
                    .map_err(|_| RejectReason::BadRange)?;
                (size, now + self.link.transfer_time(size) + src_snoop)
            }
        };
        let rec = TransferRecord {
            src,
            dst: addr,
            remote_node: Some(node),
            size: deposited,
            started: now,
            finished,
            initiator,
        };
        self.records.push(rec);
        Ok(self.records.last().expect("just pushed"))
    }

    /// Every transfer performed so far, in start order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Index of the most recent transfer, if any.
    pub fn last_index(&self) -> Option<usize> {
        self.records.len().checked_sub(1)
    }

    /// The record at `index`.
    pub fn record(&self, index: usize) -> Option<&TransferRecord> {
        self.records.get(index)
    }

    /// Drops recorded history (long benchmark runs).
    pub fn clear_records(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::PhysMemory;

    fn mover() -> DmaMover {
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 20)));
        DmaMover::new(mem, LinkModel::new("test", 1_000_000_000, SimTime::ZERO))
    }

    #[test]
    fn transfer_copies_data_and_records() {
        let mut m = mover();
        let mem = m.mem.clone();
        mem.borrow_mut().write_bytes(PhysAddr::new(0x1000), b"hello dma").unwrap();
        let rec = m
            .start(
                PhysAddr::new(0x1000),
                PhysAddr::new(0x4000),
                9,
                Initiator::Kernel,
                true,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(rec.size, 9);
        let mut buf = [0u8; 9];
        mem.borrow().read_bytes(PhysAddr::new(0x4000), &mut buf).unwrap();
        assert_eq!(&buf, b"hello dma");
        assert_eq!(m.records().len(), 1);
        assert_eq!(m.last_index(), Some(0));
    }

    #[test]
    fn zero_size_rejected() {
        let mut m = mover();
        let err = m
            .start(
                PhysAddr::new(0),
                PhysAddr::new(0x2000),
                0,
                Initiator::Kernel,
                true,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, RejectReason::ZeroSize);
    }

    #[test]
    fn page_cross_rejected_for_user_but_allowed_for_kernel() {
        let mut m = mover();
        let src = PhysAddr::new(PAGE_SIZE - 16);
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        assert_eq!(
            m.start(src, dst, 64, Initiator::Anonymous, false, SimTime::ZERO).unwrap_err(),
            RejectReason::PageCross
        );
        // Destination crossing also rejected.
        assert_eq!(
            m.start(dst, src, 64, Initiator::Anonymous, false, SimTime::ZERO).unwrap_err(),
            RejectReason::PageCross
        );
        assert!(m.start(src, dst, 64, Initiator::Kernel, true, SimTime::ZERO).is_ok());
    }

    #[test]
    fn out_of_memory_range_rejected() {
        let mut m = mover();
        let err = m
            .start(
                PhysAddr::new((1 << 20) - 4),
                PhysAddr::new(0),
                64,
                Initiator::Kernel,
                true,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, RejectReason::BadRange);
    }

    #[test]
    fn remaining_decreases_linearly() {
        let mut m = mover();
        // 1 Gb/s, no latency: 1000 bytes = 8 µs.
        let rec = *m
            .start(
                PhysAddr::new(0),
                PhysAddr::new(0x4000),
                1000,
                Initiator::Kernel,
                true,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(rec.remaining_at(SimTime::ZERO), 1000);
        assert_eq!(rec.remaining_at(SimTime::from_us(4)), 500);
        assert_eq!(rec.remaining_at(SimTime::from_us(8)), 0);
        assert_eq!(rec.remaining_at(SimTime::from_us(20)), 0);
    }

    #[test]
    fn coherent_mover_pulls_dirty_lines_and_charges_snoop_time() {
        use udma_bus::{CacheConfig, CoherenceDomain, CoherenceTiming};
        let mem: SharedMemory = Rc::new(RefCell::new(PhysMemory::new(1 << 20)));
        let domain = CoherenceDomain::new(mem.clone(), CoherenceTiming::default());
        let shared = domain.shared();
        let cpu = shared.borrow_mut().add_agent(CacheConfig::alpha_21064());
        let mut m =
            DmaMover::new(mem.clone(), LinkModel::new("test", 1_000_000_000, SimTime::ZERO));
        m.attach_coherence(shared.clone());
        assert!(m.is_coherent());
        // CPU dirties the source in its cache only — memory is stale.
        shared
            .borrow_mut()
            .agent_write(cpu, PhysAddr::new(0x1000), &0xFEEDu64.to_le_bytes())
            .unwrap();
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x1000)).unwrap(), 0);
        let rec = *m
            .start(
                PhysAddr::new(0x1000),
                PhysAddr::new(0x4000),
                8,
                Initiator::Kernel,
                true,
                SimTime::ZERO,
            )
            .unwrap();
        // The snoop pulled the Modified line, so the DMA saw fresh data.
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x4000)).unwrap(), 0xFEED);
        let intervention = shared.borrow().timing().intervention;
        assert_eq!(m.snoop_time(), intervention);
        assert_eq!(rec.finished, m.link().transfer_time(8) + intervention);
        shared.borrow().check_invariants().unwrap();
    }

    #[test]
    fn clear_records() {
        let mut m = mover();
        m.start(PhysAddr::new(0), PhysAddr::new(0x4000), 8, Initiator::Kernel, true, SimTime::ZERO)
            .unwrap();
        m.clear_records();
        assert!(m.records().is_empty());
        assert_eq!(m.last_index(), None);
    }
}
