//! Virtual-address DMA transfers: splitting, faulting, resume.
//!
//! A `VirtDma` names **virtual** addresses; the engine translates each
//! page through its [`udma_iommu::Iommu`] as the transfer streams. The
//! transfer therefore splits at page boundaries (each chunk stays inside
//! one source and one destination page — the mover's user-level
//! single-page rule holds chunk by chunk), and any chunk can fault. A
//! faulting transfer pauses *at the page boundary*: bytes before the
//! fault are transferred, bytes from the faulting page on are not — the
//! engine never writes part of a page and never silently drops a tail.

use crate::link::RetryPolicy;
use udma_bus::SimTime;
use udma_iommu::{Asid, IoFault};
use udma_mem::VirtAddr;

/// Translation-pipeline tunables: how far the engine walks ahead of the
/// streaming cursor and how many physically-contiguous pages it will
/// merge into one mover chunk. The default is the demand baseline —
/// depth 0, no coalescing — so every demand-translation number (E11,
/// E13) is unchanged unless a workload opts in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Pages of each range (src and dst) prewalked ahead of the cursor
    /// at post time and at every chunk boundary. 0 disables prefetch.
    pub depth: u64,
    /// Maximum pages merged into one chunk when consecutive pages
    /// translate to physically-contiguous frames with compatible
    /// permissions. 1 disables coalescing.
    pub max_coalesce: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig { depth: 0, max_coalesce: 1 }
    }
}

impl PrefetchConfig {
    /// Prefetch `depth` pages ahead, without coalescing.
    pub fn depth(depth: u64) -> Self {
        PrefetchConfig { depth, max_coalesce: 1 }
    }

    /// Prefetch `depth` pages ahead and merge up to `max_coalesce`
    /// contiguous pages per chunk.
    pub fn pipelined(depth: u64, max_coalesce: u64) -> Self {
        PrefetchConfig { depth, max_coalesce: max_coalesce.max(1) }
    }

    /// Whether any pipeline stage is enabled.
    pub fn enabled(&self) -> bool {
        self.depth > 0 || self.max_coalesce > 1
    }
}

/// Tunables of the virtual-address DMA unit.
#[derive(Clone, Copy, Debug)]
pub struct VirtDmaConfig {
    /// Latency of one I/O page-table walk (charged per IOTLB miss).
    pub walk_latency: SimTime,
    /// Latency of each *additional* walk in a prewalk batch: the first
    /// walk of a batch costs `walk_latency`, every further walk
    /// pipelines behind it at this (smaller) increment. Only prefetch
    /// batches get the amortized rate — a demand miss still blocks the
    /// chunk stream for the full `walk_latency`.
    pub walk_pipelined_latency: SimTime,
    /// Translation-pipeline stages (prefetch depth, chunk coalescing).
    pub prefetch: PrefetchConfig,
    /// Bounded-resume policy: attempts allowed per stretch of no
    /// progress before the transfer fails, and the (doubling) backoff
    /// charged per fruitless attempt. Shared shape with the link-level
    /// retransmit path ([`crate::ReliabilityConfig`]).
    pub retry: RetryPolicy,
}

impl Default for VirtDmaConfig {
    fn default() -> Self {
        VirtDmaConfig {
            // A walk is a couple of device-side memory reads.
            walk_latency: SimTime::from_ns(400),
            // A pipelined walk overlaps its memory reads with the
            // previous walk's: only the issue slot is serialized.
            walk_pipelined_latency: SimTime::from_ns(100),
            prefetch: PrefetchConfig::default(),
            retry: RetryPolicy::new(3, SimTime::from_us(2)),
        }
    }
}

/// Lifecycle of a virtual-address transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VirtState {
    /// Chunks are streaming.
    Running,
    /// Paused at a page boundary on an I/O fault; waiting for the OS
    /// fault service and a resume.
    Faulted(IoFault),
    /// All bytes transferred.
    Complete,
    /// Gave up: retry budget exhausted or the OS declared the fault
    /// unresolvable. The fault is the report; no partial page was
    /// written.
    Failed(IoFault),
    /// Aborted by the link layer: the retransmit budget ran dry or the
    /// watchdog saw no forward progress within its deadline. Exactly the
    /// contiguous in-order prefix (`moved`) was delivered; a status load
    /// returns [`crate::DMA_LINK_FAILED`].
    LinkFailed,
    /// Aborted by the node fault domain: the destination node crashed,
    /// hung, or let its lease expire. Exactly the contiguous in-order
    /// prefix (`moved`) was delivered *before* the failure; if the node
    /// rebooted, that prefix died with its volatile state and the sender
    /// must re-post. A status load returns [`crate::DMA_NODE_DOWN`].
    NodeDown,
}

/// The remote end of a virtual-address transfer whose destination lives
/// on another workstation: the cluster node and the address space the
/// destination VA is translated in **by the receiving NI**.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteVaTarget {
    /// Destination node within the cluster.
    pub node: u32,
    /// Address space on that node (independent of local ASIDs).
    pub asid: Asid,
}

/// One virtual-address transfer, as tracked by the engine.
#[derive(Clone, Copy, Debug)]
pub struct VirtTransfer {
    /// Index into the engine's virt-transfer table.
    pub id: usize,
    /// Posting address space.
    pub asid: Asid,
    /// Source virtual address.
    pub src: VirtAddr,
    /// Destination virtual address. For a remote transfer this is a VA
    /// in the *remote* address space named by `remote`.
    pub dst: VirtAddr,
    /// Remote destination, when the transfer crosses the link
    /// (`None` = both ends local).
    pub remote: Option<RemoteVaTarget>,
    /// Total bytes requested.
    pub size: u64,
    /// Bytes fully transferred (always a prefix; always ends at a page
    /// boundary of both ranges unless complete).
    pub moved: u64,
    /// Page-bounded chunks issued so far.
    pub chunks: u32,
    /// Consecutive fruitless resume attempts (reset on progress).
    pub retries: u32,
    /// Current state.
    pub state: VirtState,
    /// When the transfer was posted.
    pub started: SimTime,
    /// Engine-side clock: when the next chunk may start (advances over
    /// wire time, walks, fault stalls and backoff).
    pub clock: SimTime,
    /// When the last byte arrived, once complete (or the failure time).
    pub finished: Option<SimTime>,
    /// Time lost to walks, fault services and backoff (excluded wire
    /// time) — the fault-path cost the E12 sweep reports.
    pub stall: SimTime,
    /// NACKs received from the remote node (remote transfers only).
    pub nacks: u32,
    /// Time lost to NACK round trips alone — wire latency out and back
    /// for every remote fault, the cross-link cost E13 isolates. Always
    /// a subset of `stall`.
    pub nack_stall: SimTime,
    /// Data frames retransmitted by the go-back-N layer (remote
    /// transfers over a lossy link only).
    pub retransmits: u32,
    /// Retransmit-timer expiries the go-back-N layer charged.
    pub link_timeouts: u32,
    /// Time lost to retransmit timeouts and link-level backoff alone —
    /// the E14 cost. Always a subset of `stall`.
    pub link_stall: SimTime,
    /// When the transfer last made byte progress (= `started` until the
    /// first chunk lands). The watchdog aborts a non-terminal remote
    /// transfer whose `last_progress` is older than its deadline.
    pub last_progress: SimTime,
}

impl VirtTransfer {
    /// Bytes not yet transferred at `now` — what a `CTX_VIRT_GO` load
    /// returns while the transfer is live. Models the copied prefix as
    /// in flight until `clock`, linearly, like
    /// [`crate::TransferRecord::remaining_at`].
    pub fn remaining_at(&self, now: SimTime) -> u64 {
        let outstanding = self.size - self.moved;
        if now >= self.clock {
            return outstanding;
        }
        let total = (self.clock - self.started).as_ps().max(1);
        let left = (self.clock - now).as_ps();
        let in_flight = (self.moved as u128 * left as u128).div_ceil(total as u128) as u64;
        outstanding + in_flight.min(self.moved)
    }

    /// Whether the transfer reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.state,
            VirtState::Complete
                | VirtState::Failed(_)
                | VirtState::LinkFailed
                | VirtState::NodeDown
        )
    }
}

/// A fault queued for the OS, tagged with the transfer it paused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingFault {
    /// The paused transfer's id.
    pub xfer: usize,
    /// The I/O fault itself.
    pub fault: IoFault,
}

/// Counters of the virtual-address DMA unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtStats {
    /// Transfers posted (accepted).
    pub posted: u64,
    /// Transfers that completed.
    pub completed: u64,
    /// Transfers that failed (retry budget or unresolvable fault).
    pub failed: u64,
    /// I/O faults raised.
    pub faults: u64,
    /// Resume attempts.
    pub retries: u64,
    /// Page-bounded chunks issued.
    pub chunks: u64,
    /// Faults raised by a *remote* node's receive-side IOMMU (a subset
    /// of `faults`).
    pub remote_faults: u64,
    /// NACK packets that crossed the link back to this sender.
    pub nacks: u64,
    /// Transfers aborted by the link layer (watchdog deadline or
    /// retransmit budget) — a subset of neither `completed` nor
    /// `failed`.
    pub link_failed: u64,
    /// Data frames retransmitted by the go-back-N layer.
    pub retransmits: u64,
    /// Retransmit-timer expiries charged by the go-back-N layer.
    pub link_timeouts: u64,
    /// Transfers aborted because their destination *node* failed
    /// (crash/hang/lease expiry) — disjoint from `link_failed`.
    pub node_down: u64,
}

/// Per-context staging registers for the `CTX_VIRT_*` window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtStage {
    /// Staged source VA.
    pub src: Option<u64>,
    /// Staged destination VA.
    pub dst: Option<u64>,
    /// Transfer the last `CTX_VIRT_GO` store posted (None = rejected).
    pub last: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_interpolates_the_copied_prefix() {
        let t = VirtTransfer {
            id: 0,
            asid: 1,
            src: VirtAddr::new(0),
            dst: VirtAddr::new(0),
            remote: None,
            size: 1000,
            moved: 600,
            chunks: 1,
            retries: 0,
            state: VirtState::Running,
            started: SimTime::ZERO,
            clock: SimTime::from_us(6),
            finished: None,
            stall: SimTime::ZERO,
            nacks: 0,
            nack_stall: SimTime::ZERO,
            retransmits: 0,
            link_timeouts: 0,
            link_stall: SimTime::ZERO,
            last_progress: SimTime::ZERO,
        };
        // At the clock: only the unmoved tail remains.
        assert_eq!(t.remaining_at(SimTime::from_us(6)), 400);
        // At the start: everything.
        assert_eq!(t.remaining_at(SimTime::ZERO), 1000);
        // Midway: tail + about half the prefix still on the wire.
        let mid = t.remaining_at(SimTime::from_us(3));
        assert!(mid > 400 && mid < 1000, "mid = {mid}");
        assert!(!t.is_terminal());
    }
}
