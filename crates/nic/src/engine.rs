//! The DMA engine as a bus device.

use crate::protocol::{InitiationProtocol, ProtocolKind};
use crate::regs;
use crate::{EngineConfig, EngineCore};
use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;
use udma_bus::{BusDevice, SharedMemory, SimTime};
use udma_mem::{MemFault, PhysAddr, PhysLayout, Region};

/// The FPGA: decodes the register and shadow windows and drives the
/// active [`InitiationProtocol`].
///
/// The engine is shared between the bus (which delivers transactions) and
/// the machine owner (which configures keys, mapped-out tables and reads
/// statistics), so it is reference-counted: clone the handle and attach
/// one clone to the bus.
#[derive(Clone)]
pub struct DmaEngine {
    inner: Rc<RefCell<Inner>>,
}

struct Inner {
    core: EngineCore,
    protocol: Box<dyn InitiationProtocol>,
}

impl std::fmt::Debug for DmaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("DmaEngine")
            .field("protocol", &inner.protocol.kind())
            .field("stats", inner.core.stats())
            .finish()
    }
}

impl DmaEngine {
    /// Builds an engine running `kind` over the machine's memory.
    pub fn new(
        layout: PhysLayout,
        mem: SharedMemory,
        config: EngineConfig,
        kind: ProtocolKind,
    ) -> Self {
        DmaEngine {
            inner: Rc::new(RefCell::new(Inner {
                core: EngineCore::new(layout, mem, config),
                protocol: kind.instantiate(),
            })),
        }
    }

    /// The active protocol.
    pub fn protocol_kind(&self) -> ProtocolKind {
        self.inner.borrow().protocol.kind()
    }

    /// Immutable view of the engine core (stats, transfer records, keys).
    pub fn core(&self) -> Ref<'_, EngineCore> {
        Ref::map(self.inner.borrow(), |i| &i.core)
    }

    /// Mutable view of the engine core (configuration: keys, mapped-out
    /// table, clearing records).
    pub fn core_mut(&self) -> RefMut<'_, EngineCore> {
        RefMut::map(self.inner.borrow_mut(), |i| &mut i.core)
    }
}

impl BusDevice for DmaEngine {
    fn write(
        &mut self,
        paddr: PhysAddr,
        data: u64,
        _tag: u32,
        now: SimTime,
    ) -> Result<(), MemFault> {
        let mut inner = self.inner.borrow_mut();
        let Inner { core, protocol } = &mut *inner;
        match core.layout().region_of(paddr) {
            Region::Shadow => {
                let (pa, ctx) =
                    core.layout().shadow.decode(paddr).ok_or(MemFault::BusError { pa: paddr })?;
                protocol.shadow_store(core, pa, ctx, data, now);
                Ok(())
            }
            Region::NicRegs { offset } => {
                if let Some((ctx, off)) = regs::decode_ctx_offset(offset) {
                    // The virtual-address window shadows part of each
                    // context page, but only decodes on IOMMU-equipped
                    // engines; otherwise the protocol sees the store.
                    if core.virt_enabled() && regs::is_virt_offset(off) {
                        core.ctx_virt_store(ctx, off, data, now);
                        return Ok(());
                    }
                    // The doorbell likewise shadows a context-page slot
                    // and only decodes on ring-enabled engines.
                    if core.rings_enabled() && regs::is_ring_offset(off) {
                        core.ring_doorbell(ctx, data, now);
                        return Ok(());
                    }
                    protocol.ctx_store(core, ctx, off, data, now);
                    return Ok(());
                }
                match offset {
                    regs::DMA_SOURCE => core.set_dma_source(data),
                    regs::DMA_DEST => core.set_dma_dest(data),
                    regs::DMA_SIZE => core.start_kernel_dma(data, now),
                    regs::CURRENT_PID => protocol.set_current_pid(data),
                    regs::ABORT => protocol.abort(),
                    regs::ATOMIC_ADDR => core.set_atomic_addr(data),
                    regs::ATOMIC_OPERAND1 => core.set_atomic_op1(data),
                    regs::ATOMIC_OPERAND2 => core.set_atomic_op2(data),
                    regs::ATOMIC_CMD => core.exec_kernel_atomic(data),
                    o if o >= regs::KEY_TABLE_BASE
                        && o < regs::KEY_TABLE_BASE + 8 * regs::MAX_CONTEXTS as u64 =>
                    {
                        core.set_key(((o - regs::KEY_TABLE_BASE) / 8) as u32, data);
                    }
                    o if o >= regs::RING_BASE_TABLE
                        && o < regs::RING_BASE_TABLE + 8 * regs::MAX_CONTEXTS as u64 =>
                    {
                        core.set_ring_base(((o - regs::RING_BASE_TABLE) / 8) as u32, data);
                    }
                    o if o >= regs::RING_CTL_TABLE
                        && o < regs::RING_CTL_TABLE + 8 * regs::MAX_CONTEXTS as u64 =>
                    {
                        core.set_ring_ctl(((o - regs::RING_CTL_TABLE) / 8) as u32, data);
                    }
                    _ => return Err(MemFault::BusError { pa: paddr }),
                }
                Ok(())
            }
            _ => Err(MemFault::BusError { pa: paddr }),
        }
    }

    fn read(&mut self, paddr: PhysAddr, _tag: u32, now: SimTime) -> Result<u64, MemFault> {
        let mut inner = self.inner.borrow_mut();
        let Inner { core, protocol } = &mut *inner;
        match core.layout().region_of(paddr) {
            Region::Shadow => {
                let (pa, ctx) =
                    core.layout().shadow.decode(paddr).ok_or(MemFault::BusError { pa: paddr })?;
                Ok(protocol.shadow_load(core, pa, ctx, now))
            }
            Region::NicRegs { offset } => {
                if let Some((ctx, off)) = regs::decode_ctx_offset(offset) {
                    if core.virt_enabled() && regs::is_virt_offset(off) {
                        return Ok(core.ctx_virt_load(ctx, off, now));
                    }
                    if core.rings_enabled() && regs::is_ring_offset(off) {
                        return Ok(core.ring_db_load(ctx));
                    }
                    return Ok(protocol.ctx_load(core, ctx, off, now));
                }
                match offset {
                    regs::DMA_STATUS => Ok(core.kernel_dma_status(now)),
                    regs::ATOMIC_CMD => Ok(core.kernel_atomic_result()),
                    // Staged kernel registers read back as zero (the real
                    // FPGA's write-only setup registers).
                    regs::DMA_SOURCE
                    | regs::DMA_DEST
                    | regs::DMA_SIZE
                    | regs::CURRENT_PID
                    | regs::ABORT
                    | regs::ATOMIC_ADDR
                    | regs::ATOMIC_OPERAND1
                    | regs::ATOMIC_OPERAND2 => Ok(0),
                    _ => Err(MemFault::BusError { pa: paddr }),
                }
            }
            _ => Err(MemFault::BusError { pa: paddr }),
        }
    }

    fn extra_latency(&mut self) -> SimTime {
        self.inner.borrow_mut().core.take_pending_extra()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DMA_FAILURE, DMA_STARTED};
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysMemory, PAGE_SIZE};

    fn engine(kind: ProtocolKind) -> (DmaEngine, PhysLayout) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        (DmaEngine::new(layout, mem, EngineConfig::default(), kind), layout)
    }

    #[test]
    fn kernel_dma_through_the_register_window() {
        let (mut e, layout) = engine(ProtocolKind::KernelOnly);
        let base = layout.nic_base;
        e.write(base + regs::DMA_SOURCE, 2 * PAGE_SIZE, 0, SimTime::ZERO).unwrap();
        e.write(base + regs::DMA_DEST, 6 * PAGE_SIZE, 0, SimTime::ZERO).unwrap();
        e.write(base + regs::DMA_SIZE, 128, 0, SimTime::ZERO).unwrap();
        // Status far in the future: complete.
        let s = e.read(base + regs::DMA_STATUS, 0, SimTime::from_us(100_000)).unwrap();
        assert_eq!(s, 0);
        assert_eq!(e.core().stats().started, 1);
    }

    #[test]
    fn shadow_window_drives_protocol() {
        let (mut e, layout) = engine(ProtocolKind::Shrimp2);
        let shadow = |pa: u64| layout.shadow.shadow_paddr(PhysAddr::new(pa)).unwrap();
        e.write(shadow(6 * PAGE_SIZE), 64, 1, SimTime::ZERO).unwrap();
        let status = e.read(shadow(2 * PAGE_SIZE), 1, SimTime::ZERO).unwrap();
        assert_eq!(status, DMA_STARTED);
        assert_eq!(e.core().mover().records().len(), 1);
    }

    #[test]
    fn kernel_only_protocol_ignores_shadow() {
        let (mut e, layout) = engine(ProtocolKind::KernelOnly);
        let shadow = layout.shadow.shadow_paddr(PhysAddr::new(2 * PAGE_SIZE)).unwrap();
        e.write(shadow, 64, 0, SimTime::ZERO).unwrap();
        assert_eq!(e.read(shadow, 0, SimTime::ZERO).unwrap(), DMA_FAILURE);
        assert!(e.core().mover().records().is_empty());
    }

    #[test]
    fn key_table_writes_land_in_core() {
        let (mut e, layout) = engine(ProtocolKind::KeyBased);
        let base = layout.nic_base;
        e.write(base + regs::KEY_TABLE_BASE + 16, 0xCAFE_F00Du64, 0, SimTime::ZERO).unwrap();
        assert_eq!(e.core().key(2), 0xCAFE_F00Du64);
    }

    #[test]
    fn unknown_offset_is_bus_error() {
        let (mut e, layout) = engine(ProtocolKind::KernelOnly);
        let pa = layout.nic_base + 0x60;
        assert!(e.write(pa, 0, 0, SimTime::ZERO).is_err());
        assert!(e.read(pa, 0, SimTime::ZERO).is_err());
    }

    #[test]
    fn abort_and_current_pid_reach_protocol() {
        let (mut e, layout) = engine(ProtocolKind::Shrimp2);
        let base = layout.nic_base;
        let shadow = |pa: u64| layout.shadow.shadow_paddr(PhysAddr::new(pa)).unwrap();
        e.write(shadow(6 * PAGE_SIZE), 64, 1, SimTime::ZERO).unwrap();
        e.write(base + regs::ABORT, 1, 0, SimTime::ZERO).unwrap();
        let status = e.read(shadow(2 * PAGE_SIZE), 1, SimTime::ZERO).unwrap();
        assert_eq!(status, DMA_FAILURE);

        // CURRENT_PID is accepted (meaningful for FLASH).
        e.write(base + regs::CURRENT_PID, 7, 0, SimTime::ZERO).unwrap();
    }

    #[test]
    fn kernel_atomic_through_registers() {
        let (mut e, layout) = engine(ProtocolKind::KernelOnly);
        let base = layout.nic_base;
        e.write(base + regs::ATOMIC_ADDR, 0x100, 0, SimTime::ZERO).unwrap();
        e.write(base + regs::ATOMIC_OPERAND1, 5, 0, SimTime::ZERO).unwrap();
        e.write(base + regs::ATOMIC_CMD, crate::AtomicOp::Add.code(), 0, SimTime::ZERO).unwrap();
        assert_eq!(e.read(base + regs::ATOMIC_CMD, 0, SimTime::ZERO).unwrap(), 0);
        // Twice: result is the previous value (5).
        e.write(base + regs::ATOMIC_CMD, crate::AtomicOp::Add.code(), 0, SimTime::ZERO).unwrap();
        assert_eq!(e.read(base + regs::ATOMIC_CMD, 0, SimTime::ZERO).unwrap(), 5);
    }

    #[test]
    fn ring_tables_and_doorbell_decode() {
        use crate::{DescDst, DmaDescriptor, RingConfig, VirtDmaConfig};
        use udma_iommu::IotlbConfig;
        use udma_mem::{Perms, PhysFrame, VirtAddr, VirtPage};

        let (mut e, layout) = engine(ProtocolKind::KeyBased);
        {
            let mut core = e.core_mut();
            core.enable_iommu(IotlbConfig::default(), VirtDmaConfig::default());
            let iommu = core.iommu_mut().unwrap();
            iommu.create_context(1);
            iommu.map(1, VirtPage::new(0), PhysFrame::new(8), Perms::READ_WRITE, true).unwrap();
            iommu.map(1, VirtPage::new(8), PhysFrame::new(16), Perms::READ_WRITE, true).unwrap();
            core.enable_rings(RingConfig::default());
        }
        let base = layout.nic_base;
        // OS-side registration through the privileged tables.
        e.write(base + regs::RING_BASE_TABLE + 8, 0x40000, 0, SimTime::ZERO).unwrap();
        e.write(base + regs::RING_CTL_TABLE + 8, 16, 0, SimTime::ZERO).unwrap();
        assert!(e.core().ring(1).registered());

        let desc =
            DmaDescriptor::new(VirtAddr::new(0), DescDst::Local(VirtAddr::new(8 * PAGE_SIZE)), 8);
        e.core_mut().ring_post(1, &desc, SimTime::ZERO).unwrap();
        let db = base + regs::ctx_page_offset(1) + regs::CTX_RING_DB;
        assert_eq!(e.read(db, 0, SimTime::ZERO).unwrap(), 1);
        // The doorbell store itself drives the dequeue.
        e.write(db, 1, 0, SimTime::ZERO).unwrap();
        assert_eq!(e.read(db, 0, SimTime::ZERO).unwrap(), 0);
        assert_eq!(e.core().ring_stats().launched, 1);
        // Writing 0 to the control slot deregisters.
        e.write(base + regs::RING_CTL_TABLE + 8, 0, 0, SimTime::ZERO).unwrap();
        assert!(!e.core().ring(1).registered());
    }

    #[test]
    fn clones_share_state() {
        let (e, layout) = engine(ProtocolKind::Shrimp2);
        let mut bus_side = e.clone();
        let shadow = layout.shadow.shadow_paddr(PhysAddr::new(6 * PAGE_SIZE)).unwrap();
        bus_side.write(shadow, 64, 0, SimTime::ZERO).unwrap();
        let s2 = layout.shadow.shadow_paddr(PhysAddr::new(2 * PAGE_SIZE)).unwrap();
        bus_side.read(s2, 0, SimTime::ZERO).unwrap();
        // Visible through the original handle.
        assert_eq!(e.core().stats().started, 1);
    }
}
