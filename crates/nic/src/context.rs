//! Per-process register contexts (§3.1) and their spill images.

use crate::descring::RingImage;
use crate::virt::VirtStage;
use udma_mem::PhysAddr;

/// One of the engine's register contexts.
///
/// "Each context has a source register, a destination register, and a
/// size register … if a process gets interrupted while starting a DMA
/// operation, its arguments can not be mixed with another process's
/// arguments, since each process has its own set of context registers."
///
/// Address arguments arrive through keyed shadow stores in Figure 3's
/// order — destination first, then source — and accumulate in
/// [`push_addr`](Self::push_addr). The size arrives through an ordinary
/// store to the context's page. User code can never read or write the
/// address slots directly ("the user can not read/write the `source` and
/// `destination` registers of a register context using regular load/store
/// operations").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegisterContext {
    dest: Option<PhysAddr>,
    src: Option<PhysAddr>,
    size: u64,
    /// Index (into the mover's records) of this context's last transfer.
    last_transfer: Option<usize>,
    /// Result of the last atomic operation issued through this context.
    atomic_result: u64,
    /// Atomic operands staged via context-page stores.
    atomic_operands: [u64; 2],
}

impl RegisterContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts an address argument from a validated keyed shadow store:
    /// first the destination, then the source. A third address restarts
    /// the argument sequence (the previous pair was abandoned).
    pub fn push_addr(&mut self, pa: PhysAddr) {
        match (self.dest, self.src) {
            (None, _) => self.dest = Some(pa),
            (Some(_), None) => self.src = Some(pa),
            (Some(_), Some(_)) => {
                self.dest = Some(pa);
                self.src = None;
            }
        }
    }

    /// Sets the transfer size (a store to the context page).
    pub fn set_size(&mut self, size: u64) {
        self.size = size;
    }

    /// Takes the staged `(src, dst, size)` triple if complete, clearing
    /// the address slots either way. Returns `None` when arguments are
    /// missing.
    pub fn take_args(&mut self) -> Option<(PhysAddr, PhysAddr, u64)> {
        let out = match (self.src, self.dest) {
            (Some(s), Some(d)) => Some((s, d, self.size)),
            _ => None,
        };
        self.dest = None;
        self.src = None;
        out
    }

    /// Whether both address arguments are staged.
    pub fn args_complete(&self) -> bool {
        self.src.is_some() && self.dest.is_some()
    }

    /// Clears every staged argument (used by tests and by engine resets).
    pub fn clear(&mut self) {
        self.dest = None;
        self.src = None;
        self.size = 0;
    }

    /// Records the mover index of this context's latest transfer.
    pub fn set_last_transfer(&mut self, index: usize) {
        self.last_transfer = Some(index);
    }

    /// Mover index of the latest transfer, if any.
    pub fn last_transfer(&self) -> Option<usize> {
        self.last_transfer
    }

    /// Stages atomic operand `slot` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `slot > 1`.
    pub fn set_atomic_operand(&mut self, slot: usize, value: u64) {
        self.atomic_operands[slot] = value;
    }

    /// The staged atomic operands.
    pub fn atomic_operands(&self) -> [u64; 2] {
        self.atomic_operands
    }

    /// Stores the result of the last atomic operation.
    pub fn set_atomic_result(&mut self, value: u64) {
        self.atomic_result = value;
    }

    /// Result of the last atomic operation.
    pub fn atomic_result(&self) -> u64 {
        self.atomic_result
    }

    /// The staged destination (engine internal / test inspection).
    pub fn dest(&self) -> Option<PhysAddr> {
        self.dest
    }

    /// The staged source (engine internal / test inspection).
    pub fn src(&self) -> Option<PhysAddr> {
        self.src
    }
}

/// A register context spilled to OS memory: everything the §3.2 kernel
/// path must save to evict a process from the NI and later refill
/// bit-for-bit — the authorisation key, the staged DMA arguments and
/// transfer bookkeeping, and the `CTX_VIRT_*` staging registers.
///
/// The image deliberately does **not** carry in-flight transfer state:
/// [`EngineCore::save_context`](crate::EngineCore::save_context) refuses
/// to spill a context whose last transfer is still on the wire, because
/// real hardware cannot checkpoint a DMA engine mid-burst. Completed
/// transfer indices (`last_transfer`, `VirtStage::last`) *are* carried —
/// the mover's record table is global, so a refilled process's status
/// loads still resolve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxImage {
    /// The 61-bit key programmed into the context's key-table slot.
    pub key: u64,
    /// The context's register file (addresses, size, atomics, last
    /// transfer).
    pub regs: RegisterContext,
    /// The context's `CTX_VIRT_*` staging window.
    pub virt: VirtStage,
    /// The context's descriptor-ring registration, if one was installed
    /// (`None` = no ring). Only a *quiescent* ring spills — see
    /// [`RingImage`] — so base, capacity and the converged cursor are
    /// the whole state.
    pub ring: Option<RingImage>,
}

/// Why [`EngineCore::save_context`](crate::EngineCore::save_context)
/// refused to spill a context. Both reasons mean "a transfer this
/// context can still observe is live" — the OS must pick another victim
/// or wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtxBusy {
    /// The context's last physical transfer is still on the wire.
    Transfer,
    /// The context's last virtual-address transfer is running, paused at
    /// a fault, or still draining.
    VirtTransfer,
    /// The context's descriptor ring has queued work: descriptors
    /// posted but not yet doorbelled, a batch still being dequeued, or
    /// a ring-launched transfer still live. Spilling now would strand
    /// (or replay under another process's key) the queued descriptors.
    RingPending,
}

/// Context-virtualization counters kept by the engine core — the same
/// flat-counter shape as [`udma_iommu::IotlbStats`], surfaced through
/// the experiment report path (E17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxStats {
    /// Contexts saved to an OS-held [`CtxImage`] (kernel spill path).
    pub spills: u64,
    /// Contexts refilled from a [`CtxImage`] (kernel fill path).
    pub fills: u64,
    /// Spills that evicted a *different* live process (OS-reported; a
    /// spill of an exiting process is not a steal).
    pub steals: u64,
    /// Save attempts refused because the context was busy
    /// ([`CtxBusy`]) — the steal-vs-in-flight-transfer guard firing.
    pub busy_denials: u64,
    /// Acquisitions that found no admissible victim (every candidate
    /// busy or QoS-protected) and fell back to the kernel DMA path.
    pub starvations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_then_src_order() {
        let mut c = RegisterContext::new();
        c.push_addr(PhysAddr::new(0x2000)); // dest first (Figure 3)
        c.push_addr(PhysAddr::new(0x1000)); // then source
        c.set_size(64);
        assert!(c.args_complete());
        let (s, d, n) = c.take_args().unwrap();
        assert_eq!(s, PhysAddr::new(0x1000));
        assert_eq!(d, PhysAddr::new(0x2000));
        assert_eq!(n, 64);
        assert!(!c.args_complete());
    }

    #[test]
    fn third_address_restarts_sequence() {
        let mut c = RegisterContext::new();
        c.push_addr(PhysAddr::new(0x10));
        c.push_addr(PhysAddr::new(0x20));
        c.push_addr(PhysAddr::new(0x30)); // abandons the pair
        assert!(!c.args_complete());
        assert_eq!(c.dest(), Some(PhysAddr::new(0x30)));
        assert_eq!(c.src(), None);
    }

    #[test]
    fn take_args_incomplete_is_none_and_clears() {
        let mut c = RegisterContext::new();
        c.push_addr(PhysAddr::new(0x10));
        assert!(c.take_args().is_none());
        assert_eq!(c.dest(), None);
    }

    #[test]
    fn atomic_bookkeeping() {
        let mut c = RegisterContext::new();
        c.set_atomic_operand(0, 11);
        c.set_atomic_operand(1, 22);
        assert_eq!(c.atomic_operands(), [11, 22]);
        c.set_atomic_result(33);
        assert_eq!(c.atomic_result(), 33);
    }

    #[test]
    fn transfer_index_tracking() {
        let mut c = RegisterContext::new();
        assert_eq!(c.last_transfer(), None);
        c.set_last_transfer(4);
        assert_eq!(c.last_transfer(), Some(4));
    }

    #[test]
    fn clear_resets_args() {
        let mut c = RegisterContext::new();
        c.push_addr(PhysAddr::new(0x10));
        c.push_addr(PhysAddr::new(0x20));
        c.set_size(8);
        c.clear();
        assert!(!c.args_complete());
        assert!(c.take_args().is_none());
    }
}
