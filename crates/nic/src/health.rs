//! Per-destination node health: the failure detector and its state
//! machine.
//!
//! The PR 4 link layer already survives a *lossy* link (go-back-N,
//! watchdog, circuit breaker); this module generalizes the breaker from
//! "the link to everywhere" to "this particular peer". Every sender
//! keeps one [`PeerHealth`] per destination and drives it from
//! ACK-lease outcomes:
//!
//! ```text
//!        lease miss ×suspect_after        lease miss ×down_after
//!   Up ───────────────────────► Suspect ───────────────────────► Down
//!    ▲                              │                              │
//!    │ byte progress                │ byte progress                │ Pong / Hello
//!    │                              ▼                              ▼
//!    └──────────────────────── (back to Up) ◄────────────── Recovering
//! ```
//!
//! `Down` is the fail-fast state: new posts targeting the peer are
//! rejected with [`crate::RejectReason::NodeDown`] and in-flight
//! transfers abort with [`crate::DMA_NODE_DOWN`], delivering exactly
//! their in-order prefix. Probes (bounded by the shared
//! [`RetryPolicy`]) and the rebooted peer's own Hello broadcast move
//! the peer to `Recovering`; the first completed byte of progress
//! closes the loop back to `Up`.

use crate::faulty::ReliabilityConfig;
use crate::link::RetryPolicy;
use udma_bus::SimTime;

/// Health of one destination node, as seen by one sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Leases are being met; posts flow normally.
    Up,
    /// One or more leases missed; the sender keeps retransmitting but
    /// the peer is on notice.
    Suspect,
    /// The miss threshold tripped: posts fail fast, in-flight transfers
    /// abort `NodeDown`, probes back off under the shared retry policy.
    Down,
    /// A probe answered or the peer announced a reboot; transfers may
    /// relaunch, and the first byte of progress confirms `Up`.
    Recovering,
}

/// Failure-detector tunables. Built
/// [`from_reliability`](HealthConfig::from_reliability) so the one
/// `breaker_threshold` the PR 4 circuit breaker trips on is also the
/// `Down` threshold here — the health machine *is* the breaker,
/// per-destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// ACK lease: how long after a chunk launch the sender waits for
    /// byte progress before counting a miss. Must exceed a chunk's
    /// worst-case round trip (serialisation + NACK service + backoff)
    /// or a merely-slow peer gets declared dead.
    pub lease: SimTime,
    /// Consecutive misses that move `Up → Suspect`.
    pub suspect_after: u32,
    /// Consecutive misses that move `Suspect → Down`. Reuses
    /// [`ReliabilityConfig::breaker_threshold`].
    pub down_after: u32,
    /// Probe schedule once `Down`: bounded attempts with doubling
    /// backoff, the same policy shape every retry layer shares.
    pub probe: RetryPolicy,
}

impl HealthConfig {
    /// Derives the detector from the link-reliability knobs: the lease
    /// is a fraction of the PR 4 no-progress watchdog (tighter, since a
    /// lease watches one chunk, not a whole transfer), the `Down`
    /// threshold *is* the breaker threshold, and probes reuse the
    /// link's retry policy.
    pub fn from_reliability(rel: &ReliabilityConfig) -> Self {
        HealthConfig {
            lease: SimTime::from_ps(rel.watchdog.as_ps() / 16),
            suspect_after: 1,
            down_after: rel.breaker_threshold,
            probe: rel.retry,
        }
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::from_reliability(&ReliabilityConfig::default())
    }
}

/// Aggregate detector counters (per sender, summed over peers in the
/// cluster digest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// ACK leases that expired without progress.
    pub misses: u64,
    /// `Up/Suspect → Down` transitions.
    pub downs: u64,
    /// `Down/Recovering → Up` transitions (service restored).
    pub recoveries: u64,
    /// Probes sent.
    pub probes: u64,
    /// Posts or launches rejected fail-fast because the peer was `Down`.
    pub fail_fast: u64,
}

impl HealthStats {
    /// Folds another sender's counters in (digest aggregation).
    pub fn absorb(&mut self, other: &HealthStats) {
        self.misses += other.misses;
        self.downs += other.downs;
        self.recoveries += other.recoveries;
        self.probes += other.probes;
        self.fail_fast += other.fail_fast;
    }
}

/// One sender's view of one destination node.
#[derive(Clone, Copy, Debug)]
pub struct PeerHealth {
    state: HealthState,
    /// Consecutive lease misses (reset on progress).
    misses_in_row: u32,
    /// Highest incarnation epoch seen from the peer.
    incarnation: u64,
    /// Probes sent since the peer went `Down` (bounds the probe loop).
    probes_sent: u32,
    /// When the peer went `Down`, for recovery-latency accounting.
    down_since: Option<SimTime>,
    /// Detector counters.
    pub stats: HealthStats,
}

impl Default for PeerHealth {
    fn default() -> Self {
        PeerHealth {
            state: HealthState::Up,
            misses_in_row: 0,
            incarnation: 0,
            probes_sent: 0,
            down_since: None,
            stats: HealthStats::default(),
        }
    }
}

impl PeerHealth {
    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Highest incarnation epoch seen from the peer.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// When the peer went `Down`, while it still is.
    pub fn down_since(&self) -> Option<SimTime> {
        self.down_since
    }

    /// Whether a new post targeting the peer should fail fast. Counts
    /// the rejection when it should.
    pub fn admit(&mut self) -> bool {
        if self.state == HealthState::Down {
            self.stats.fail_fast += 1;
            return false;
        }
        true
    }

    /// An ACK lease expired without byte progress. Returns the state
    /// after the miss; the caller aborts in-flight transfers when it
    /// sees `Down`.
    pub fn on_miss(&mut self, cfg: &HealthConfig, now: SimTime) -> HealthState {
        self.stats.misses += 1;
        self.misses_in_row += 1;
        match self.state {
            HealthState::Up | HealthState::Recovering | HealthState::Suspect => {
                if self.misses_in_row >= cfg.down_after {
                    self.state = HealthState::Down;
                    self.stats.downs += 1;
                    self.down_since = Some(now);
                    self.probes_sent = 0;
                } else if self.misses_in_row >= cfg.suspect_after {
                    self.state = HealthState::Suspect;
                }
            }
            HealthState::Down => {}
        }
        self.state
    }

    /// The PR 4 no-progress watchdog deadline blew with the peer
    /// unresponsive — conclusive failure, straight to `Down` (the
    /// deadline is an order of magnitude longer than a lease, so there
    /// is no Suspect grace left to give).
    pub fn on_deadline(&mut self, now: SimTime) -> HealthState {
        self.stats.misses += 1;
        self.misses_in_row = 0;
        if self.state != HealthState::Down {
            self.state = HealthState::Down;
            self.stats.downs += 1;
            self.down_since = Some(now);
            self.probes_sent = 0;
        }
        self.state
    }

    /// Byte progress from the peer: leases are being met again.
    /// Returns the duration of the outage this progress ended, if it
    /// ended one (the recovery-latency sample).
    pub fn on_progress(&mut self, now: SimTime) -> Option<SimTime> {
        self.misses_in_row = 0;
        let was_down = self.down_since.take();
        if matches!(self.state, HealthState::Down | HealthState::Recovering) {
            self.stats.recoveries += 1;
        }
        self.state = HealthState::Up;
        was_down.map(|t| now.saturating_sub(t))
    }

    /// The peer spoke with incarnation `inc` (Hello broadcast or Pong).
    /// Moves `Down → Recovering` and returns `true` when the epoch
    /// *advanced* — the caller must then treat all pre-epoch progress
    /// toward the peer as lost.
    pub fn on_alive(&mut self, inc: u64) -> bool {
        let advanced = inc > self.incarnation;
        self.incarnation = self.incarnation.max(inc);
        if matches!(self.state, HealthState::Down) {
            self.state = HealthState::Recovering;
            self.misses_in_row = 0;
        }
        advanced
    }

    /// Records a frame from the peer with epoch `inc` and tells whether
    /// it is stale (older than an epoch this sender has already seen) —
    /// stale frames are fenced, never merged.
    pub fn note_epoch(&mut self, inc: u64) -> bool {
        if inc < self.incarnation {
            return true;
        }
        self.incarnation = inc;
        false
    }

    /// Whether to probe now, and when to try again: consumes one probe
    /// attempt and returns the backoff until the next. `None` once the
    /// budget is exhausted (the peer's own Hello is then the only way
    /// back) or when the peer is not `Down`.
    pub fn next_probe(&mut self, cfg: &HealthConfig) -> Option<SimTime> {
        if self.state != HealthState::Down || cfg.probe.exhausted(self.probes_sent) {
            return None;
        }
        let backoff = cfg.probe.backoff_after(self.probes_sent);
        self.probes_sent += 1;
        self.stats.probes += 1;
        Some(backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite pin: the PR 4 circuit-breaker trip threshold is a
    /// `ReliabilityConfig` field and its historical default is 3 — and
    /// the health machine's `Down` threshold reuses exactly that field.
    #[test]
    fn breaker_threshold_default_is_three_and_reused() {
        let rel = ReliabilityConfig::default();
        assert_eq!(rel.breaker_threshold, 3);
        let cfg = HealthConfig::from_reliability(&rel);
        assert_eq!(cfg.down_after, rel.breaker_threshold);
        assert_eq!(cfg.probe, rel.retry);
        assert_eq!(HealthConfig::default(), cfg);
    }

    #[test]
    fn misses_walk_up_suspect_down_and_progress_resets() {
        let cfg = HealthConfig::default();
        let mut p = PeerHealth::default();
        assert_eq!(p.state(), HealthState::Up);
        assert!(p.admit());
        assert_eq!(p.on_miss(&cfg, SimTime::from_us(1)), HealthState::Suspect);
        assert_eq!(p.on_miss(&cfg, SimTime::from_us(2)), HealthState::Suspect);
        assert_eq!(p.on_miss(&cfg, SimTime::from_us(3)), HealthState::Down);
        assert!(!p.admit(), "down peers fail fast");
        assert_eq!(p.stats.fail_fast, 1);
        assert_eq!(p.down_since(), Some(SimTime::from_us(3)));
        // Progress ends the outage and reports its length.
        assert_eq!(p.on_progress(SimTime::from_us(10)), Some(SimTime::from_us(7)));
        assert_eq!(p.state(), HealthState::Up);
        assert_eq!(p.stats.recoveries, 1);
        // A lone miss only suspects; progress clears it silently.
        p.on_miss(&cfg, SimTime::from_us(11));
        assert_eq!(p.state(), HealthState::Suspect);
        assert_eq!(p.on_progress(SimTime::from_us(12)), None);
        assert_eq!(p.state(), HealthState::Up);
    }

    #[test]
    fn hello_recovers_and_advances_the_epoch() {
        let cfg = HealthConfig::default();
        let mut p = PeerHealth::default();
        for t in 1..=3 {
            p.on_miss(&cfg, SimTime::from_us(t));
        }
        assert_eq!(p.state(), HealthState::Down);
        assert!(p.on_alive(1), "first reboot advances the epoch");
        assert_eq!(p.state(), HealthState::Recovering);
        assert_eq!(p.incarnation(), 1);
        assert!(!p.on_alive(1), "same epoch again is not an advance");
        // Stale frames from the dead incarnation are fenced.
        assert!(p.note_epoch(0));
        assert!(!p.note_epoch(1));
        assert!(!p.note_epoch(2), "newer epochs are learned, not fenced");
        assert_eq!(p.incarnation(), 2);
    }

    #[test]
    fn probes_are_bounded_by_the_shared_retry_policy() {
        let rel = ReliabilityConfig::default();
        let cfg = HealthConfig::from_reliability(&rel);
        let mut p = PeerHealth::default();
        for t in 1..=3 {
            p.on_miss(&cfg, SimTime::from_us(t));
        }
        let mut sent = 0;
        while let Some(backoff) = p.next_probe(&cfg) {
            assert_eq!(backoff, cfg.probe.backoff_after(sent));
            sent += 1;
            assert!(sent <= cfg.probe.max_retries, "probe loop must terminate");
        }
        assert_eq!(sent, cfg.probe.max_retries);
        assert_eq!(p.stats.probes, u64::from(sent));
        // Not down — no probes.
        let mut up = PeerHealth::default();
        assert_eq!(up.next_probe(&cfg), None);
    }
}
