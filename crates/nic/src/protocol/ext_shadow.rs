//! Extended shadow addressing (§3.2, Figure 4).

use crate::protocol::{poll_ctx_status, InitiationProtocol, ProtocolKind};
use crate::regs::{self, MAX_CONTEXTS};
use crate::{AtomicOp, EngineCore, Initiator, RejectReason, DMA_FAILURE};
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// Extended shadow addressing: the kernel embeds a 1–2-bit `CONTEXT_ID`
/// in the shadow *physical* address when it creates the mappings, so
/// "by checking the CONTEXT_ID, the DMA engine knows which process the
/// shadow address belongs to" — the FLASH property with zero kernel
/// involvement at transfer time.
///
/// The initiation sequence is SHRIMP-2's two accesses (Figure 4), but the
/// pending-argument slot is per context id, so interleavings of different
/// processes cannot mix arguments. If somehow a store and load with
/// different context ids pair up, the transfer is refused
/// ([`RejectReason::CtxMismatch`] covers the engine-without-contexts
/// variant the paper sketches).
#[derive(Clone, Debug)]
pub struct ExtShadow {
    pending: [Option<(PhysAddr, u64)>; MAX_CONTEXTS as usize],
}

impl Default for ExtShadow {
    fn default() -> Self {
        ExtShadow { pending: [None; MAX_CONTEXTS as usize] }
    }
}

impl ExtShadow {
    /// Creates the state machine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InitiationProtocol for ExtShadow {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::ExtShadow
    }

    fn shadow_store(
        &mut self,
        core: &mut EngineCore,
        pa: PhysAddr,
        ctx: u32,
        size: u64,
        _now: SimTime,
    ) {
        if !core.has_context(ctx) {
            core.note_reject(RejectReason::CtxMismatch);
            return;
        }
        self.pending[ctx as usize] = Some((pa, size));
    }

    fn shadow_load(&mut self, core: &mut EngineCore, pa: PhysAddr, ctx: u32, now: SimTime) -> u64 {
        if !core.has_context(ctx) {
            core.note_reject(RejectReason::CtxMismatch);
            return DMA_FAILURE;
        }
        match self.pending[ctx as usize].take() {
            Some((dst, size)) => {
                match core.start_user_dma(pa, dst, size, Initiator::Context(ctx), now) {
                    Ok(index) => {
                        core.context_mut(ctx).set_last_transfer(index);
                        core.context_transfer(ctx)
                            .map(|r| r.remaining_at(now))
                            .unwrap_or(DMA_FAILURE)
                    }
                    Err(_) => DMA_FAILURE,
                }
            }
            None => {
                core.note_reject(RejectReason::MissingArgs);
                DMA_FAILURE
            }
        }
    }

    fn ctx_store(
        &mut self,
        core: &mut EngineCore,
        ctx: u32,
        offset: u64,
        data: u64,
        _now: SimTime,
    ) {
        if !core.has_context(ctx) {
            return;
        }
        match offset {
            regs::CTX_ATOMIC_OPERAND1 => core.context_mut(ctx).set_atomic_operand(0, data),
            regs::CTX_ATOMIC_OPERAND2 => core.context_mut(ctx).set_atomic_operand(1, data),
            regs::CTX_ATOMIC_CMD => {
                // The address comes from this context's pending slot (one
                // shadow store instead of two: atomics take a single
                // address, §3.5).
                let Some((addr, _)) = self.pending[ctx as usize].take() else {
                    core.note_reject(RejectReason::MissingArgs);
                    return;
                };
                let [op1, op2] = core.context(ctx).atomic_operands();
                let result = match AtomicOp::from_code(data) {
                    Some(op) => core.exec_atomic(op, addr, op1, op2).unwrap_or(DMA_FAILURE),
                    None => DMA_FAILURE,
                };
                core.context_mut(ctx).set_atomic_result(result);
            }
            _ => {}
        }
    }

    fn ctx_load(&mut self, core: &mut EngineCore, ctx: u32, offset: u64, now: SimTime) -> u64 {
        poll_ctx_status(core, ctx, offset, now)
    }
}

/// The §3.2 variant for an engine *without* register contexts: one
/// pending-argument slot, tagged with the store's CONTEXT_ID; the load
/// completes the pair only if its own CONTEXT_ID matches ("if they are
/// different, the DMA operation is not started and an error code is
/// returned by the last LOAD instruction").
///
/// Unlike [`ExtShadow`], an interleaving of two processes makes *both*
/// fail (and retry) rather than both succeed — safe, but not wait-free.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExtShadowPairwise {
    pending: Option<(PhysAddr, u64, u32)>,
}

impl ExtShadowPairwise {
    /// Creates the state machine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InitiationProtocol for ExtShadowPairwise {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::ExtShadowPairwise
    }

    fn shadow_store(
        &mut self,
        _core: &mut EngineCore,
        pa: PhysAddr,
        ctx: u32,
        size: u64,
        _now: SimTime,
    ) {
        self.pending = Some((pa, size, ctx));
    }

    fn shadow_load(&mut self, core: &mut EngineCore, pa: PhysAddr, ctx: u32, now: SimTime) -> u64 {
        match self.pending.take() {
            Some((dst, size, store_ctx)) if store_ctx == ctx => {
                match core.start_user_dma(pa, dst, size, Initiator::Context(ctx), now) {
                    Ok(_) => crate::DMA_STARTED,
                    Err(_) => DMA_FAILURE,
                }
            }
            Some(_) => {
                core.note_reject(RejectReason::CtxMismatch);
                DMA_FAILURE
            }
            None => {
                core.note_reject(RejectReason::MissingArgs);
                DMA_FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysLayout, PhysMemory, PAGE_SIZE};

    fn world() -> (ExtShadow, EngineCore) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        (ExtShadow::new(), EngineCore::new(layout, mem, EngineConfig::default()))
    }

    #[test]
    fn figure_4_two_access_initiation() {
        let (mut p, mut core) = world();
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        let src = PhysAddr::new(2 * PAGE_SIZE);
        p.shadow_store(&mut core, dst, 2, 128, SimTime::ZERO);
        let status = p.shadow_load(&mut core, src, 2, SimTime::ZERO);
        assert_ne!(status, DMA_FAILURE);
        let rec = &core.mover().records()[0];
        assert_eq!((rec.src, rec.dst, rec.size), (src, dst, 128));
        assert_eq!(rec.initiator, Initiator::Context(2));
    }

    #[test]
    fn interleaved_processes_use_disjoint_slots() {
        let (mut p, mut core) = world();
        let dst_a = PhysAddr::new(4 * PAGE_SIZE);
        let dst_b = PhysAddr::new(5 * PAGE_SIZE);
        let src_a = PhysAddr::new(2 * PAGE_SIZE);
        let src_b = PhysAddr::new(3 * PAGE_SIZE);
        // A(ctx 0) stores, B(ctx 1) preempts and does a full initiation,
        // A resumes: exactly the schedule that breaks SHRIMP-2.
        p.shadow_store(&mut core, dst_a, 0, 64, SimTime::ZERO);
        p.shadow_store(&mut core, dst_b, 1, 32, SimTime::ZERO);
        assert_ne!(p.shadow_load(&mut core, src_b, 1, SimTime::ZERO), DMA_FAILURE);
        assert_ne!(p.shadow_load(&mut core, src_a, 0, SimTime::ZERO), DMA_FAILURE);
        let recs = core.mover().records();
        assert_eq!((recs[0].src, recs[0].dst), (src_b, dst_b));
        assert_eq!((recs[1].src, recs[1].dst), (src_a, dst_a));
    }

    #[test]
    fn load_before_store_fails() {
        let (mut p, mut core) = world();
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(PAGE_SIZE), 0, SimTime::ZERO),
            DMA_FAILURE
        );
        assert_eq!(core.stats().rejected_for(RejectReason::MissingArgs), 1);
    }

    #[test]
    fn out_of_range_context_rejected() {
        let (mut p, mut core) = world(); // 4 contexts configured
        p.shadow_store(&mut core, PhysAddr::new(PAGE_SIZE), 5, 64, SimTime::ZERO);
        assert_eq!(core.stats().rejected_for(RejectReason::CtxMismatch), 1);
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(PAGE_SIZE), 5, SimTime::ZERO),
            DMA_FAILURE
        );
    }

    #[test]
    fn status_polling_after_initiation() {
        let (mut p, mut core) = world();
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        let src = PhysAddr::new(2 * PAGE_SIZE);
        p.shadow_store(&mut core, dst, 0, 4096, SimTime::ZERO);
        let r0 = p.shadow_load(&mut core, src, 0, SimTime::ZERO);
        assert!(r0 > 0 && r0 != DMA_FAILURE); // bytes still in flight
                                              // Long after the wire time has elapsed the context reads 0.
        let done = p.ctx_load(&mut core, 0, regs::CTX_SIZE_TRIGGER, SimTime::from_us(100_000));
        assert_eq!(done, 0);
    }

    #[test]
    fn pairwise_variant_accepts_matching_ctx_pair() {
        let (_, mut core) = world();
        let mut p = ExtShadowPairwise::new();
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        let src = PhysAddr::new(2 * PAGE_SIZE);
        p.shadow_store(&mut core, dst, 1, 64, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut core, src, 1, SimTime::ZERO), crate::DMA_STARTED);
        let rec = &core.mover().records()[0];
        assert_eq!((rec.src, rec.dst), (src, dst));
    }

    #[test]
    fn pairwise_variant_rejects_mixed_ctx_pair() {
        let (_, mut core) = world();
        let mut p = ExtShadowPairwise::new();
        // Process ctx 0 stores; process ctx 1's load arrives next — the
        // §2.5 race pattern. The engine refuses instead of mixing.
        p.shadow_store(&mut core, PhysAddr::new(4 * PAGE_SIZE), 0, 64, SimTime::ZERO);
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(2 * PAGE_SIZE), 1, SimTime::ZERO),
            DMA_FAILURE
        );
        assert!(core.mover().records().is_empty());
        assert_eq!(core.stats().rejected_for(RejectReason::CtxMismatch), 1);
        // The slot is consumed: the victim's own late load also fails…
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(2 * PAGE_SIZE), 0, SimTime::ZERO),
            DMA_FAILURE
        );
        // …and a clean retry succeeds.
        p.shadow_store(&mut core, PhysAddr::new(4 * PAGE_SIZE), 0, 64, SimTime::ZERO);
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(2 * PAGE_SIZE), 0, SimTime::ZERO),
            crate::DMA_STARTED
        );
    }

    #[test]
    fn atomic_fetch_store_via_ext_shadow() {
        let (mut p, mut core) = world();
        let addr = PhysAddr::new(0x200);
        core.exec_atomic(AtomicOp::FetchStore, addr, 5, 0).unwrap();
        p.shadow_store(&mut core, addr, 3, 0, SimTime::ZERO); // address only
        p.ctx_store(&mut core, 3, regs::CTX_ATOMIC_OPERAND1, 77, SimTime::ZERO);
        p.ctx_store(&mut core, 3, regs::CTX_ATOMIC_CMD, AtomicOp::FetchStore.code(), SimTime::ZERO);
        assert_eq!(p.ctx_load(&mut core, 3, regs::CTX_ATOMIC_CMD, SimTime::ZERO), 5);
    }
}
