//! FLASH: per-process argument slots keyed by a kernel-maintained
//! current-pid register (§2.6).

use crate::protocol::{InitiationProtocol, ProtocolKind};
use crate::{EngineCore, Initiator, RejectReason, DMA_FAILURE, DMA_STARTED};
use std::collections::HashMap;
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// The FLASH scheme: "the context switch handler informs the DMA engine
/// about which process is currently running. Thus, the DMA engine knows
/// which process runs, and makes sure that DMA arguments belonging to
/// different processes do not get mixed."
///
/// With an *unmodified* kernel the current-pid register is never updated,
/// every process's accesses land in the same slot, and the scheme
/// degenerates to SHRIMP-2's race — which is why FLASH counts as
/// requiring a kernel patch.
#[derive(Clone, Debug, Default)]
pub struct Flash {
    current_pid: u64,
    pending: HashMap<u64, (PhysAddr, u64)>,
}

impl Flash {
    /// Creates the state machine; the current pid starts at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pid the engine currently believes is running.
    pub fn current_pid(&self) -> u64 {
        self.current_pid
    }
}

impl InitiationProtocol for Flash {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Flash
    }

    fn shadow_store(
        &mut self,
        _core: &mut EngineCore,
        pa: PhysAddr,
        _ctx: u32,
        size: u64,
        _now: SimTime,
    ) {
        self.pending.insert(self.current_pid, (pa, size));
    }

    fn shadow_load(&mut self, core: &mut EngineCore, pa: PhysAddr, _ctx: u32, now: SimTime) -> u64 {
        match self.pending.remove(&self.current_pid) {
            Some((dst, size)) => {
                match core.start_user_dma(pa, dst, size, Initiator::Anonymous, now) {
                    Ok(_) => DMA_STARTED,
                    Err(_) => DMA_FAILURE,
                }
            }
            None => {
                core.note_reject(RejectReason::MissingArgs);
                DMA_FAILURE
            }
        }
    }

    fn set_current_pid(&mut self, pid: u64) {
        self.current_pid = pid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysLayout, PhysMemory, PAGE_SIZE};

    fn world() -> (Flash, EngineCore) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        (Flash::new(), EngineCore::new(layout, mem, EngineConfig::default()))
    }

    #[test]
    fn per_process_slots_survive_interleaving_when_kernel_notifies() {
        let (mut p, mut core) = world();
        let dst_a = PhysAddr::new(4 * PAGE_SIZE);
        let dst_b = PhysAddr::new(5 * PAGE_SIZE);
        let src_a = PhysAddr::new(2 * PAGE_SIZE);
        let src_b = PhysAddr::new(3 * PAGE_SIZE);

        p.set_current_pid(1); // kernel patch at dispatch of A
        p.shadow_store(&mut core, dst_a, 0, 64, SimTime::ZERO);
        p.set_current_pid(2); // context switch to B
        p.shadow_store(&mut core, dst_b, 0, 32, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut core, src_b, 0, SimTime::ZERO), DMA_STARTED);
        p.set_current_pid(1); // back to A
        assert_eq!(p.shadow_load(&mut core, src_a, 0, SimTime::ZERO), DMA_STARTED);

        let recs = core.mover().records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].src, recs[0].dst), (src_b, dst_b));
        assert_eq!((recs[1].src, recs[1].dst), (src_a, dst_a));
    }

    #[test]
    fn without_kernel_notification_arguments_mix() {
        let (mut p, mut core) = world();
        // Unmodified kernel: current_pid stays 0 for everyone.
        let dst_a = PhysAddr::new(4 * PAGE_SIZE);
        let dst_b = PhysAddr::new(5 * PAGE_SIZE);
        let src_a = PhysAddr::new(2 * PAGE_SIZE);
        p.shadow_store(&mut core, dst_a, 0, 64, SimTime::ZERO); // A
        p.shadow_store(&mut core, dst_b, 0, 32, SimTime::ZERO); // B overwrites
        assert_eq!(p.shadow_load(&mut core, src_a, 0, SimTime::ZERO), DMA_STARTED);
        // A's source went to B's destination: SHRIMP-2's race reappears.
        assert_eq!(core.mover().records()[0].dst, dst_b);
    }

    #[test]
    fn load_with_no_pending_slot_fails() {
        let (mut p, mut core) = world();
        p.set_current_pid(7);
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(PAGE_SIZE), 0, SimTime::ZERO),
            DMA_FAILURE
        );
    }
}
