//! SHRIMP-1: mapped-out pages (§2.4).

use crate::protocol::{InitiationProtocol, ProtocolKind};
use crate::{Destination, EngineCore, Initiator, RejectReason, DMA_FAILURE, DMA_STARTED};
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// The first SHRIMP scheme: every communication page has a fixed
/// "mapped-out" destination page on another workstation, so a single
/// atomic store suffices — the store's *address* names the source, its
/// *data* carries the size, and the destination is implied.
///
/// "This solution, although correct, is of limited functionality. A DMA
/// operation can happen only between a page and its mapped out
/// counterpart" — the engine rejects sources with no mapped-out entry.
#[derive(Clone, Debug, Default)]
pub struct Shrimp1 {
    last_status: u64,
}

impl Shrimp1 {
    /// Creates the state machine.
    pub fn new() -> Self {
        Shrimp1 { last_status: DMA_FAILURE }
    }
}

impl InitiationProtocol for Shrimp1 {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Shrimp1
    }

    fn shadow_store(
        &mut self,
        core: &mut EngineCore,
        pa: PhysAddr,
        _ctx: u32,
        size: u64,
        now: SimTime,
    ) {
        let Some(dst_base) = core.mapped_out(pa.page()) else {
            core.note_reject(RejectReason::MissingArgs);
            self.last_status = DMA_FAILURE;
            return;
        };
        let result = match dst_base {
            Destination::Local(base) => {
                core.start_user_dma(pa, base + pa.page_offset(), size, Initiator::Anonymous, now)
            }
            Destination::Remote { node, addr } => core.start_user_dma_remote(
                pa,
                node,
                addr + pa.page_offset(),
                size,
                Initiator::Anonymous,
                now,
            ),
            // SHRIMP-1 mapped-out pages are proven physical at map-out
            // time; a virtual remote destination has no place in this
            // protocol's table.
            Destination::RemoteVirt { .. } => {
                core.note_reject(RejectReason::BadRange);
                Err(RejectReason::BadRange)
            }
        };
        self.last_status = match result {
            Ok(_) => DMA_STARTED,
            Err(_) => DMA_FAILURE,
        };
    }

    fn shadow_load(
        &mut self,
        _core: &mut EngineCore,
        _pa: PhysAddr,
        _ctx: u32,
        _now: SimTime,
    ) -> u64 {
        // The compare-and-exchange of the real SHRIMP returns the
        // initiation result; modelled as a status load.
        self.last_status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysLayout, PhysMemory, PAGE_SIZE};

    fn world() -> (Shrimp1, EngineCore) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        (Shrimp1::new(), EngineCore::new(layout, mem, EngineConfig::default()))
    }

    #[test]
    fn store_to_mapped_page_starts_transfer_to_fixed_destination() {
        let (mut p, mut core) = world();
        let src = PhysAddr::new(2 * PAGE_SIZE);
        core.set_mapped_out(src.page(), Destination::Local(PhysAddr::new(40 * PAGE_SIZE)));
        p.shadow_store(&mut core, src + 0x40, 0, 128, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut core, src, 0, SimTime::ZERO), DMA_STARTED);
        let rec = &core.mover().records()[0];
        assert_eq!(rec.src, src + 0x40);
        // Destination preserves the in-page offset.
        assert_eq!(rec.dst, PhysAddr::new(40 * PAGE_SIZE + 0x40));
        assert_eq!(rec.size, 128);
    }

    #[test]
    fn unmapped_source_page_rejected() {
        let (mut p, mut core) = world();
        p.shadow_store(&mut core, PhysAddr::new(PAGE_SIZE), 0, 64, SimTime::ZERO);
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(PAGE_SIZE), 0, SimTime::ZERO),
            DMA_FAILURE
        );
        assert!(core.mover().records().is_empty());
        assert_eq!(core.stats().rejected_for(RejectReason::MissingArgs), 1);
    }

    #[test]
    fn page_crossing_transfer_rejected() {
        let (mut p, mut core) = world();
        let src = PhysAddr::new(2 * PAGE_SIZE);
        core.set_mapped_out(src.page(), Destination::Local(PhysAddr::new(40 * PAGE_SIZE)));
        p.shadow_store(&mut core, src + (PAGE_SIZE - 8), 0, 64, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut core, src, 0, SimTime::ZERO), DMA_FAILURE);
        assert_eq!(core.stats().rejected_for(RejectReason::PageCross), 1);
    }
}
