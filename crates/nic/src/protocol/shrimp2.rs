//! SHRIMP-2: the two-access store+load scheme (§2.5, Figure 2).

use crate::protocol::{InitiationProtocol, ProtocolKind};
use crate::{EngineCore, Initiator, RejectReason, DMA_FAILURE, DMA_STARTED};
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// The second SHRIMP scheme. A store to `shadow(vdestination)` stages the
/// destination address and size; a load from `shadow(vsource)` supplies
/// the source, starts the transfer and returns the status.
///
/// The engine has **one** pending-argument slot, so "if the user process
/// is interrupted after the STORE operation, but before the LOAD
/// operation, then its arguments to the DMA operation may get mixed with
/// arguments of other processes". Safety requires either the SHRIMP
/// kernel patch (the context-switch handler writes the engine's abort
/// register → [`InitiationProtocol::abort`]) or PAL-mode execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct Shrimp2 {
    pending: Option<(PhysAddr, u64)>,
}

impl Shrimp2 {
    /// Creates the state machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a half-initiated transfer is staged (test inspection).
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

impl InitiationProtocol for Shrimp2 {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Shrimp2
    }

    fn shadow_store(
        &mut self,
        _core: &mut EngineCore,
        pa: PhysAddr,
        _ctx: u32,
        size: u64,
        _now: SimTime,
    ) {
        self.pending = Some((pa, size));
    }

    fn shadow_load(&mut self, core: &mut EngineCore, pa: PhysAddr, _ctx: u32, now: SimTime) -> u64 {
        match self.pending.take() {
            Some((dst, size)) => {
                match core.start_user_dma(pa, dst, size, Initiator::Anonymous, now) {
                    Ok(_) => DMA_STARTED,
                    Err(_) => DMA_FAILURE,
                }
            }
            None => {
                core.note_reject(RejectReason::MissingArgs);
                DMA_FAILURE
            }
        }
    }

    fn abort(&mut self) {
        // The SHRIMP kernel patch: "the operating system must invalidate
        // any partially initiated user-level DMA transfer on every
        // context switch".
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysLayout, PhysMemory, PAGE_SIZE};

    fn world() -> (Shrimp2, EngineCore) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        (Shrimp2::new(), EngineCore::new(layout, mem, EngineConfig::default()))
    }

    #[test]
    fn store_then_load_transfers() {
        let (mut p, mut core) = world();
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        let src = PhysAddr::new(2 * PAGE_SIZE);
        p.shadow_store(&mut core, dst, 0, 256, SimTime::ZERO);
        assert!(p.has_pending());
        let status = p.shadow_load(&mut core, src, 0, SimTime::ZERO);
        assert_eq!(status, DMA_STARTED);
        assert!(!p.has_pending());
        let rec = &core.mover().records()[0];
        assert_eq!((rec.src, rec.dst, rec.size), (src, dst, 256));
    }

    #[test]
    fn load_without_store_fails() {
        let (mut p, mut core) = world();
        let status = p.shadow_load(&mut core, PhysAddr::new(PAGE_SIZE), 0, SimTime::ZERO);
        assert_eq!(status, DMA_FAILURE);
        assert_eq!(core.stats().rejected_for(RejectReason::MissingArgs), 1);
    }

    #[test]
    fn argument_mixing_race_is_real() {
        // Process A stores dst_a; B preempts, stores dst_b and loads
        // src_b → B's transfer uses B's args (fine); then A loads src_a
        // → *fails* (slot empty), or worse if B only stored: A's load
        // pairs with B's destination.
        let (mut p, mut core) = world();
        let dst_a = PhysAddr::new(4 * PAGE_SIZE);
        let dst_b = PhysAddr::new(5 * PAGE_SIZE);
        let src_a = PhysAddr::new(2 * PAGE_SIZE);
        p.shadow_store(&mut core, dst_a, 0, 64, SimTime::ZERO); // A
        p.shadow_store(&mut core, dst_b, 0, 32, SimTime::ZERO); // B overwrites
        let status = p.shadow_load(&mut core, src_a, 0, SimTime::ZERO); // A resumes
        assert_eq!(status, DMA_STARTED);
        let rec = &core.mover().records()[0];
        // A's data went to B's destination: the paper's race.
        assert_eq!(rec.dst, dst_b);
        assert_eq!(rec.src, src_a);
    }

    #[test]
    fn abort_clears_pending_half_initiation() {
        let (mut p, mut core) = world();
        p.shadow_store(&mut core, PhysAddr::new(4 * PAGE_SIZE), 0, 64, SimTime::ZERO);
        p.abort(); // SHRIMP kernel patch at context switch
        let status = p.shadow_load(&mut core, PhysAddr::new(2 * PAGE_SIZE), 0, SimTime::ZERO);
        assert_eq!(status, DMA_FAILURE);
        assert!(core.mover().records().is_empty());
    }
}
