//! The key-based scheme (§3.1, Figure 3).

use crate::protocol::{poll_ctx_status, InitiationProtocol, ProtocolKind};
use crate::regs::{self, decode_key_ctx};
use crate::{AtomicOp, EngineCore, Initiator, RejectReason, DMA_FAILURE};
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// Key-based user-level DMA.
///
/// Address arguments arrive as `STORE key#context_id TO shadow(vaddr)`:
/// the engine checks the key against the per-context table the OS
/// programmed, then stages the decoded physical address in that context
/// (destination first, then source). The size arrives as an ordinary
/// store to the context's page, and a load from the context page starts
/// the transfer and returns the status / bytes remaining.
///
/// Atomic operations (§3.5) reuse the same machinery: one keyed shadow
/// store supplies the address, context-page stores supply the operands,
/// and a store of the op-code to the context's atomic command register
/// executes it.
#[derive(Clone, Copy, Debug, Default)]
pub struct KeyBased;

impl KeyBased {
    /// Creates the state machine (all state lives in the engine's
    /// register contexts).
    pub fn new() -> Self {
        KeyBased
    }
}

impl InitiationProtocol for KeyBased {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::KeyBased
    }

    fn shadow_store(
        &mut self,
        core: &mut EngineCore,
        pa: PhysAddr,
        _ctx: u32,
        data: u64,
        _now: SimTime,
    ) {
        core.charge_key_check();
        let (key, ctx) = decode_key_ctx(data);
        if !core.has_context(ctx) || core.key(ctx) != key {
            core.note_key_mismatch();
            return;
        }
        core.context_mut(ctx).push_addr(pa);
    }

    fn shadow_load(
        &mut self,
        core: &mut EngineCore,
        _pa: PhysAddr,
        _ctx: u32,
        _now: SimTime,
    ) -> u64 {
        // The key-based scheme passes both addresses with stores; loads
        // from the shadow window mean nothing here.
        core.note_reject(RejectReason::BadSequence);
        DMA_FAILURE
    }

    fn ctx_store(
        &mut self,
        core: &mut EngineCore,
        ctx: u32,
        offset: u64,
        data: u64,
        _now: SimTime,
    ) {
        if !core.has_context(ctx) {
            return;
        }
        match offset {
            regs::CTX_SIZE_TRIGGER => core.context_mut(ctx).set_size(data),
            regs::CTX_ATOMIC_OPERAND1 => core.context_mut(ctx).set_atomic_operand(0, data),
            regs::CTX_ATOMIC_OPERAND2 => core.context_mut(ctx).set_atomic_operand(1, data),
            regs::CTX_ATOMIC_CMD => {
                // The staged (first) address is the atomic's operand.
                let Some(addr) = core.context(ctx).dest() else {
                    core.note_reject(RejectReason::MissingArgs);
                    return;
                };
                let [op1, op2] = core.context(ctx).atomic_operands();
                let result = match AtomicOp::from_code(data) {
                    Some(op) => core.exec_atomic(op, addr, op1, op2).unwrap_or(DMA_FAILURE),
                    None => DMA_FAILURE,
                };
                let c = core.context_mut(ctx);
                c.set_atomic_result(result);
                c.clear();
            }
            _ => {}
        }
    }

    fn ctx_load(&mut self, core: &mut EngineCore, ctx: u32, offset: u64, now: SimTime) -> u64 {
        if !core.has_context(ctx) {
            return DMA_FAILURE;
        }
        if offset == regs::CTX_SIZE_TRIGGER && core.context(ctx).args_complete() {
            // Figure 3's final LOAD: initiate and report.
            let (src, dst, size) =
                core.context_mut(ctx).take_args().expect("args_complete checked");
            return match core.start_user_dma(src, dst, size, Initiator::Context(ctx), now) {
                Ok(index) => {
                    core.context_mut(ctx).set_last_transfer(index);
                    core.context_transfer(ctx).map(|r| r.remaining_at(now)).unwrap_or(DMA_FAILURE)
                }
                Err(_) => DMA_FAILURE,
            };
        }
        poll_ctx_status(core, ctx, offset, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::encode_key_ctx;
    use crate::EngineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysLayout, PhysMemory, PAGE_SIZE};

    fn world() -> (KeyBased, EngineCore) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        let mut core = EngineCore::new(layout, mem, EngineConfig::default());
        core.set_key(1, 0xFEED_BEEF);
        (KeyBased::new(), core)
    }

    #[test]
    fn figure_3_sequence_starts_transfer() {
        let (mut p, mut core) = world();
        let key = encode_key_ctx(0xFEED_BEEF, 1);
        let dst = PhysAddr::new(4 * PAGE_SIZE);
        let src = PhysAddr::new(2 * PAGE_SIZE);
        p.shadow_store(&mut core, dst, 0, key, SimTime::ZERO); // dest
        p.shadow_store(&mut core, src, 0, key, SimTime::ZERO); // source
        p.ctx_store(&mut core, 1, regs::CTX_SIZE_TRIGGER, 512, SimTime::ZERO);
        let status = p.ctx_load(&mut core, 1, regs::CTX_SIZE_TRIGGER, SimTime::ZERO);
        assert_ne!(status, DMA_FAILURE);
        let rec = &core.mover().records()[0];
        assert_eq!((rec.src, rec.dst, rec.size), (src, dst, 512));
        assert_eq!(rec.initiator, Initiator::Context(1));
    }

    #[test]
    fn wrong_key_is_dropped() {
        let (mut p, mut core) = world();
        let bad = encode_key_ctx(0xBAD, 1);
        p.shadow_store(&mut core, PhysAddr::new(4 * PAGE_SIZE), 0, bad, SimTime::ZERO);
        assert_eq!(core.stats().key_mismatches, 1);
        assert!(!core.context(1).args_complete());
        // The final load then fails for missing args.
        let status = p.ctx_load(&mut core, 1, regs::CTX_SIZE_TRIGGER, SimTime::ZERO);
        assert_eq!(status, DMA_FAILURE);
    }

    #[test]
    fn keyed_stores_of_two_processes_do_not_mix() {
        let (mut p, mut core) = world();
        core.set_key(2, 0xAAAA);
        let k1 = encode_key_ctx(0xFEED_BEEF, 1);
        let k2 = encode_key_ctx(0xAAAA, 2);
        // Interleave the two processes' argument stores arbitrarily:
        p.shadow_store(&mut core, PhysAddr::new(4 * PAGE_SIZE), 0, k1, SimTime::ZERO);
        p.shadow_store(&mut core, PhysAddr::new(5 * PAGE_SIZE), 0, k2, SimTime::ZERO);
        p.shadow_store(&mut core, PhysAddr::new(2 * PAGE_SIZE), 0, k1, SimTime::ZERO);
        p.shadow_store(&mut core, PhysAddr::new(3 * PAGE_SIZE), 0, k2, SimTime::ZERO);
        p.ctx_store(&mut core, 1, regs::CTX_SIZE_TRIGGER, 64, SimTime::ZERO);
        p.ctx_store(&mut core, 2, regs::CTX_SIZE_TRIGGER, 32, SimTime::ZERO);
        assert_ne!(p.ctx_load(&mut core, 1, regs::CTX_SIZE_TRIGGER, SimTime::ZERO), DMA_FAILURE);
        assert_ne!(p.ctx_load(&mut core, 2, regs::CTX_SIZE_TRIGGER, SimTime::ZERO), DMA_FAILURE);
        let recs = core.mover().records();
        assert_eq!(recs[0].src, PhysAddr::new(2 * PAGE_SIZE));
        assert_eq!(recs[0].dst, PhysAddr::new(4 * PAGE_SIZE));
        assert_eq!(recs[1].src, PhysAddr::new(3 * PAGE_SIZE));
        assert_eq!(recs[1].dst, PhysAddr::new(5 * PAGE_SIZE));
    }

    #[test]
    fn shadow_loads_are_protocol_errors() {
        let (mut p, mut core) = world();
        assert_eq!(
            p.shadow_load(&mut core, PhysAddr::new(PAGE_SIZE), 0, SimTime::ZERO),
            DMA_FAILURE
        );
    }

    #[test]
    fn atomic_add_via_context() {
        let (mut p, mut core) = world();
        let addr = PhysAddr::new(0x100);
        {
            let mem = core.mover().records(); // silence unused in some cfgs
            let _ = mem;
        }
        // Seed memory.
        core.exec_atomic(AtomicOp::FetchStore, addr, 10, 0).unwrap();
        let key = encode_key_ctx(0xFEED_BEEF, 1);
        p.shadow_store(&mut core, addr, 0, key, SimTime::ZERO); // address
        p.ctx_store(&mut core, 1, regs::CTX_ATOMIC_OPERAND1, 32, SimTime::ZERO);
        p.ctx_store(&mut core, 1, regs::CTX_ATOMIC_CMD, AtomicOp::Add.code(), SimTime::ZERO);
        let old = p.ctx_load(&mut core, 1, regs::CTX_ATOMIC_CMD, SimTime::ZERO);
        assert_eq!(old, 10);
    }

    #[test]
    fn atomic_without_address_fails() {
        let (mut p, mut core) = world();
        p.ctx_store(&mut core, 1, regs::CTX_ATOMIC_CMD, AtomicOp::Add.code(), SimTime::ZERO);
        assert_eq!(core.stats().rejected_for(RejectReason::MissingArgs), 1);
    }

    #[test]
    fn key_check_charges_device_latency() {
        let (mut p, mut core) = world();
        let key = encode_key_ctx(0xFEED_BEEF, 1);
        p.shadow_store(&mut core, PhysAddr::new(PAGE_SIZE), 0, key, SimTime::ZERO);
        assert!(core.take_pending_extra() > SimTime::ZERO);
    }
}
