//! Repeated passing of arguments (§3.3, Figures 5–8).

use crate::protocol::{InitiationProtocol, ProtocolKind};
use crate::{EngineCore, Initiator, DMA_FAILURE, DMA_PENDING, DMA_STARTED};
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// The direction of a shadow access, as the FSM sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Acc {
    St,
    Ld,
}

/// The repeated-passing state machine, parameterised over the paper's
/// three variants:
///
/// * **3-instruction** (`LOAD, STORE, LOAD`; source repeated) — broken by
///   the Figure 5 interleaving;
/// * **4-instruction** (`STORE, LOAD, STORE, LOAD`) — broken by the
///   Figure 6 interleaving when the source is readable by the attacker;
/// * **5-instruction** (`STORE, LOAD, STORE, LOAD, LOAD`) — the paper's
///   final scheme: "a DMA operation is started only if the DMA engine
///   receives a sequence of the type STORE, LOAD, STORE, LOAD, LOAD, and
///   the address arguments of instructions 1, 3 and 5 are the same, and
///   the address arguments of instructions 2 and 4 are the same as well."
///
/// There is exactly **one** FSM for the whole engine — no per-process
/// state, which is the scheme's selling point — and "if it sees anything
/// out of this order, the DMA engine resets itself". An access that
/// breaks a sequence may itself begin a fresh one.
#[derive(Clone, Debug)]
pub struct Repeated {
    kind: ProtocolKind,
    pattern: &'static [Acc],
    /// `(address, data)` of each matched access so far.
    state: Vec<(PhysAddr, u64)>,
}

impl Repeated {
    /// The 3-instruction variant (insecure; kept as the Figure 5
    /// baseline).
    pub fn three() -> Self {
        Repeated {
            kind: ProtocolKind::Repeated3,
            pattern: &[Acc::Ld, Acc::St, Acc::Ld],
            state: Vec::new(),
        }
    }

    /// The 4-instruction variant (insecure; kept as the Figure 6
    /// baseline).
    pub fn four() -> Self {
        Repeated {
            kind: ProtocolKind::Repeated4,
            pattern: &[Acc::St, Acc::Ld, Acc::St, Acc::Ld],
            state: Vec::new(),
        }
    }

    /// The 5-instruction variant (the paper's secure scheme, Figure 7).
    pub fn five() -> Self {
        Repeated {
            kind: ProtocolKind::Repeated5,
            pattern: &[Acc::St, Acc::Ld, Acc::St, Acc::Ld, Acc::Ld],
            state: Vec::new(),
        }
    }

    /// Current sequence position (test inspection).
    pub fn position(&self) -> usize {
        self.state.len()
    }

    /// Does the access at `pos` satisfy the variant's address/data
    /// equality constraints against the matched prefix?
    fn constraints_ok(&self, pos: usize, pa: PhysAddr, data: u64) -> bool {
        match (self.kind, pos) {
            // 3-instruction: loads 0 and 2 repeat the source.
            (ProtocolKind::Repeated3, 2) => pa == self.state[0].0,
            // 4-instruction: stores 0 and 2 repeat destination+size,
            // loads 1 and 3 repeat the source.
            (ProtocolKind::Repeated4, 2) => pa == self.state[0].0 && data == self.state[0].1,
            (ProtocolKind::Repeated4, 3) => pa == self.state[1].0,
            // 5-instruction: 0,2,4 repeat the destination (0,2 with equal
            // sizes); 1,3 repeat the source.
            (ProtocolKind::Repeated5, 2) => pa == self.state[0].0 && data == self.state[0].1,
            (ProtocolKind::Repeated5, 3) => pa == self.state[1].0,
            (ProtocolKind::Repeated5, 4) => pa == self.state[0].0,
            _ => true,
        }
    }

    /// The `(src, dst, size)` of a completed sequence.
    fn extract(&self) -> (PhysAddr, PhysAddr, u64) {
        match self.kind {
            ProtocolKind::Repeated3 => (self.state[0].0, self.state[1].0, self.state[1].1),
            _ => (self.state[1].0, self.state[0].0, self.state[0].1),
        }
    }

    fn on_access(
        &mut self,
        core: &mut EngineCore,
        kind: Acc,
        pa: PhysAddr,
        data: u64,
        now: SimTime,
    ) -> u64 {
        let pos = self.state.len();
        if kind == self.pattern[pos] && self.constraints_ok(pos, pa, data) {
            self.state.push((pa, data));
            if self.state.len() == self.pattern.len() {
                let (src, dst, size) = self.extract();
                self.state.clear();
                return match core.start_user_dma(src, dst, size, Initiator::Anonymous, now) {
                    Ok(_) => DMA_STARTED,
                    Err(_) => DMA_FAILURE,
                };
            }
            return DMA_PENDING;
        }
        // Out of order: reset; the offending access may start a new
        // sequence.
        core.note_sequence_reset();
        self.state.clear();
        if kind == self.pattern[0] {
            self.state.push((pa, data));
            return DMA_PENDING;
        }
        DMA_FAILURE
    }
}

impl InitiationProtocol for Repeated {
    fn kind(&self) -> ProtocolKind {
        self.kind
    }

    fn shadow_store(
        &mut self,
        core: &mut EngineCore,
        pa: PhysAddr,
        _ctx: u32,
        data: u64,
        now: SimTime,
    ) {
        let _ = self.on_access(core, Acc::St, pa, data, now);
    }

    fn shadow_load(&mut self, core: &mut EngineCore, pa: PhysAddr, _ctx: u32, now: SimTime) -> u64 {
        self.on_access(core, Acc::Ld, pa, 0, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysLayout, PhysMemory, PAGE_SIZE};

    fn core() -> EngineCore {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        EngineCore::new(layout, mem, EngineConfig::default())
    }

    fn a(page: u64) -> PhysAddr {
        PhysAddr::new(page * PAGE_SIZE)
    }

    #[test]
    fn five_instruction_happy_path() {
        let mut p = Repeated::five();
        let mut c = core();
        let (dst, src, size) = (a(4), a(2), 96);
        p.shadow_store(&mut c, dst, 0, size, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut c, src, 0, SimTime::ZERO), DMA_PENDING);
        p.shadow_store(&mut c, dst, 0, size, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut c, src, 0, SimTime::ZERO), DMA_PENDING);
        assert_eq!(p.shadow_load(&mut c, dst, 0, SimTime::ZERO), DMA_STARTED);
        let rec = &c.mover().records()[0];
        assert_eq!((rec.src, rec.dst, rec.size), (src, dst, size));
    }

    #[test]
    fn five_instruction_mismatched_source_resets() {
        let mut p = Repeated::five();
        let mut c = core();
        p.shadow_store(&mut c, a(4), 0, 64, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut c, a(2), 0, SimTime::ZERO), DMA_PENDING);
        p.shadow_store(&mut c, a(4), 0, 64, SimTime::ZERO);
        // Fourth access loads a *different* source → reset.
        assert_eq!(p.shadow_load(&mut c, a(3), 0, SimTime::ZERO), DMA_FAILURE);
        assert_eq!(p.position(), 0);
        assert!(c.mover().records().is_empty());
        assert_eq!(c.stats().sequence_resets, 1);
    }

    #[test]
    fn five_instruction_size_mismatch_resets() {
        let mut p = Repeated::five();
        let mut c = core();
        p.shadow_store(&mut c, a(4), 0, 64, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut c, a(2), 0, SimTime::ZERO), DMA_PENDING);
        p.shadow_store(&mut c, a(4), 0, 65, SimTime::ZERO); // size differs
                                                            // The store restarts a sequence at position 1.
        assert_eq!(p.position(), 1);
        assert!(c.mover().records().is_empty());
    }

    #[test]
    fn three_instruction_happy_path() {
        let mut p = Repeated::three();
        let mut c = core();
        let (src, dst, size) = (a(2), a(4), 48);
        assert_eq!(p.shadow_load(&mut c, src, 0, SimTime::ZERO), DMA_PENDING);
        p.shadow_store(&mut c, dst, 0, size, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut c, src, 0, SimTime::ZERO), DMA_STARTED);
        let rec = &c.mover().records()[0];
        assert_eq!((rec.src, rec.dst, rec.size), (src, dst, size));
    }

    #[test]
    fn figure_5_attack_on_three_instruction_variant() {
        // Victim wants A→B; malicious has read access to C only.
        let mut p = Repeated::three();
        let mut c = core();
        let (addr_a, addr_b, addr_c) = (a(2), a(4), a(6));
        // 1: victim      LOAD  shadow(A)
        p.shadow_load(&mut c, addr_a, 0, SimTime::ZERO);
        // 2: malicious   STORE shadow(foo)
        p.shadow_store(&mut c, a(7), 0, 1, SimTime::ZERO);
        // 3: malicious   LOAD  shadow(foo)  ← "DMA is not started"
        // (the broken load may begin a fresh sequence, but no transfer
        // has happened)
        assert_ne!(p.shadow_load(&mut c, a(7), 0, SimTime::ZERO), DMA_STARTED);
        assert!(c.mover().records().is_empty());
        // 4: malicious   LOAD  shadow(C)
        p.shadow_load(&mut c, addr_c, 0, SimTime::ZERO);
        // 5: victim      STORE size TO shadow(B)
        p.shadow_store(&mut c, addr_b, 0, 64, SimTime::ZERO);
        // 6: malicious   LOAD  shadow(C)   ← DMA C→B is started!
        assert_eq!(p.shadow_load(&mut c, addr_c, 0, SimTime::ZERO), DMA_STARTED);
        let rec = &c.mover().records()[0];
        assert_eq!((rec.src, rec.dst), (addr_c, addr_b));
    }

    #[test]
    fn figure_6_attack_on_four_instruction_variant() {
        // Victim: ST B, LD A, ST B, LD A; malicious has read access to A.
        let mut p = Repeated::four();
        let mut c = core();
        let (addr_a, addr_b) = (a(2), a(4));
        p.shadow_store(&mut c, addr_b, 0, 64, SimTime::ZERO); // 1 victim
        assert_eq!(p.shadow_load(&mut c, addr_a, 0, SimTime::ZERO), DMA_PENDING); // 2 victim
        p.shadow_store(&mut c, addr_b, 0, 64, SimTime::ZERO); // 3 victim
                                                              // 4: malicious LOAD shadow(A) completes the sequence → DMA starts
                                                              // and the *malicious* process gets the success status.
        assert_eq!(p.shadow_load(&mut c, addr_a, 0, SimTime::ZERO), DMA_STARTED);
        assert_eq!(c.mover().records().len(), 1);
        // 5: victim's own LOAD shadow(A) is now out of order → it is told
        // the DMA did NOT start (misinformation, Figure 6).
        assert_eq!(p.shadow_load(&mut c, addr_a, 0, SimTime::ZERO), DMA_FAILURE);
    }

    #[test]
    fn reset_access_may_begin_new_sequence() {
        let mut p = Repeated::five();
        let mut c = core();
        assert_eq!(p.shadow_load(&mut c, a(2), 0, SimTime::ZERO), DMA_FAILURE);
        // A store after garbage starts fresh at position 1.
        p.shadow_store(&mut c, a(4), 0, 64, SimTime::ZERO);
        assert_eq!(p.position(), 1);
    }

    #[test]
    fn page_crossing_transfer_still_rejected() {
        let mut p = Repeated::five();
        let mut c = core();
        let dst = PhysAddr::new(4 * PAGE_SIZE + PAGE_SIZE - 8);
        let src = a(2);
        p.shadow_store(&mut c, dst, 0, 64, SimTime::ZERO);
        p.shadow_load(&mut c, src, 0, SimTime::ZERO);
        p.shadow_store(&mut c, dst, 0, 64, SimTime::ZERO);
        p.shadow_load(&mut c, src, 0, SimTime::ZERO);
        assert_eq!(p.shadow_load(&mut c, dst, 0, SimTime::ZERO), DMA_FAILURE);
        assert!(c.mover().records().is_empty());
    }
}
