//! The initiation protocol state machines.
//!
//! Exactly one protocol is active in the engine at a time (the paper's
//! FPGA was likewise synthesised per scheme). Each protocol interprets
//! the two user-visible windows:
//!
//! * **shadow accesses** — loads/stores whose physical address has the
//!   shadow bit set; the engine has already stripped the bit and
//!   extracted the embedded context id;
//! * **register-context pages** — ordinary loads/stores to the per-process
//!   context pages (§3.1).
//!
//! The kernel-only privileged window (Figure 1 registers, FLASH
//! current-pid, SHRIMP abort, key table) is handled by the engine itself
//! and merely forwarded to [`InitiationProtocol::abort`] /
//! [`InitiationProtocol::set_current_pid`] where relevant.

mod ext_shadow;
mod flash;
mod key;
mod repeated;
mod shrimp1;
mod shrimp2;

pub use ext_shadow::{ExtShadow, ExtShadowPairwise};
pub use flash::Flash;
pub use key::KeyBased;
pub use repeated::Repeated;
pub use shrimp1::Shrimp1;
pub use shrimp2::Shrimp2;

use crate::regs;
use crate::{EngineCore, DMA_FAILURE};
use std::fmt;
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// Which initiation scheme the engine implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Shadow window disabled: only kernel-level DMA works.
    KernelOnly,
    /// SHRIMP-1: one store per transfer; destination fixed per page
    /// ("mapped-out" pages, §2.4).
    Shrimp1,
    /// SHRIMP-2: store destination+size, load source+status (§2.5).
    /// Safe only with the SHRIMP kernel patch (abort on context switch)
    /// or under PAL-call execution (§2.7).
    Shrimp2,
    /// FLASH: like SHRIMP-2, but the engine keeps per-process argument
    /// slots selected by a kernel-maintained current-pid register (§2.6).
    Flash,
    /// Key-based register contexts (§3.1).
    KeyBased,
    /// Extended shadow addressing: context id inside the shadow physical
    /// address (§3.2).
    ExtShadow,
    /// Extended shadow addressing for an engine *without* register
    /// contexts: a single pending slot plus a pairwise CONTEXT_ID check
    /// on the store/load pair (§3.2, last sentence).
    ExtShadowPairwise,
    /// Repeated passing of arguments, 3-instruction variant (insecure,
    /// Figure 5).
    Repeated3,
    /// Repeated passing of arguments, 4-instruction variant (insecure,
    /// Figure 6).
    Repeated4,
    /// Repeated passing of arguments, 5-instruction variant (§3.3,
    /// proven safe in §3.3.1).
    Repeated5,
}

impl ProtocolKind {
    /// Instantiates the protocol's state machine.
    pub fn instantiate(self) -> Box<dyn InitiationProtocol> {
        match self {
            ProtocolKind::KernelOnly => Box::new(KernelOnly),
            ProtocolKind::Shrimp1 => Box::new(Shrimp1::new()),
            ProtocolKind::Shrimp2 => Box::new(Shrimp2::new()),
            ProtocolKind::Flash => Box::new(Flash::new()),
            ProtocolKind::KeyBased => Box::new(KeyBased::new()),
            ProtocolKind::ExtShadow => Box::new(ExtShadow::new()),
            ProtocolKind::ExtShadowPairwise => Box::new(ExtShadowPairwise::new()),
            ProtocolKind::Repeated3 => Box::new(Repeated::three()),
            ProtocolKind::Repeated4 => Box::new(Repeated::four()),
            ProtocolKind::Repeated5 => Box::new(Repeated::five()),
        }
    }

    /// Whether the scheme needs the OS context-switch handler modified to
    /// be safe — the property the paper's own schemes avoid.
    pub fn needs_kernel_patch(self) -> bool {
        matches!(self, ProtocolKind::Shrimp2 | ProtocolKind::Flash)
    }

    /// User-mode instructions one initiation takes (the paper's "2 to 5
    /// assembly instructions"); `None` for the kernel path.
    pub fn user_instructions(self) -> Option<u32> {
        match self {
            ProtocolKind::KernelOnly => None,
            ProtocolKind::Shrimp1 => Some(1),
            ProtocolKind::Shrimp2
            | ProtocolKind::Flash
            | ProtocolKind::ExtShadow
            | ProtocolKind::ExtShadowPairwise => Some(2),
            ProtocolKind::KeyBased => Some(4),
            ProtocolKind::Repeated3 => Some(3),
            ProtocolKind::Repeated4 => Some(4),
            ProtocolKind::Repeated5 => Some(5),
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::KernelOnly => "kernel-only",
            ProtocolKind::Shrimp1 => "shrimp-1 (mapped-out)",
            ProtocolKind::Shrimp2 => "shrimp-2 (store+load)",
            ProtocolKind::Flash => "flash (current-pid)",
            ProtocolKind::KeyBased => "key-based",
            ProtocolKind::ExtShadow => "extended shadow",
            ProtocolKind::ExtShadowPairwise => "extended shadow (pairwise)",
            ProtocolKind::Repeated3 => "repeated-passing/3",
            ProtocolKind::Repeated4 => "repeated-passing/4",
            ProtocolKind::Repeated5 => "repeated-passing/5",
        };
        f.write_str(s)
    }
}

/// A protocol state machine inside the engine.
pub trait InitiationProtocol {
    /// The scheme this machine implements.
    fn kind(&self) -> ProtocolKind;

    /// A store hit the shadow window. `pa` is the decoded plain physical
    /// address, `ctx` the context id embedded in the shadow address
    /// (always 0 unless the OS created extended-shadow mappings), `data`
    /// the store payload.
    fn shadow_store(
        &mut self,
        core: &mut EngineCore,
        pa: PhysAddr,
        ctx: u32,
        data: u64,
        now: SimTime,
    );

    /// A load hit the shadow window; returns the load's data (a status
    /// code or byte count).
    fn shadow_load(&mut self, core: &mut EngineCore, pa: PhysAddr, ctx: u32, now: SimTime) -> u64;

    /// A store hit register-context page `ctx` at `offset`.
    fn ctx_store(&mut self, core: &mut EngineCore, ctx: u32, offset: u64, data: u64, now: SimTime) {
        let _ = (core, ctx, offset, data, now);
    }

    /// A load hit register-context page `ctx` at `offset`; default is
    /// transfer-status polling.
    fn ctx_load(&mut self, core: &mut EngineCore, ctx: u32, offset: u64, now: SimTime) -> u64 {
        poll_ctx_status(core, ctx, offset, now)
    }

    /// SHRIMP kernel patch: invalidate partially initiated transfers.
    fn abort(&mut self) {}

    /// FLASH kernel patch: the scheduler dispatched process `pid`.
    fn set_current_pid(&mut self, pid: u64) {
        let _ = pid;
    }
}

/// Default context-page load behaviour: report the context's last
/// transfer ("a read operation from a register context returns the number
/// of bytes that need to be transferred yet; -1 means failure", §3.1) or
/// the context's atomic result register.
pub(crate) fn poll_ctx_status(core: &EngineCore, ctx: u32, offset: u64, now: SimTime) -> u64 {
    if !core.has_context(ctx) {
        return DMA_FAILURE;
    }
    match offset {
        regs::CTX_ATOMIC_CMD => core.context(ctx).atomic_result(),
        _ => match core.context_transfer(ctx) {
            Some(rec) => rec.remaining_at(now),
            None => DMA_FAILURE,
        },
    }
}

/// The no-op protocol: every shadow access fails.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelOnly;

impl InitiationProtocol for KernelOnly {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::KernelOnly
    }

    fn shadow_store(
        &mut self,
        _core: &mut EngineCore,
        _pa: PhysAddr,
        _ctx: u32,
        _d: u64,
        _n: SimTime,
    ) {
    }

    fn shadow_load(
        &mut self,
        _core: &mut EngineCore,
        _pa: PhysAddr,
        _ctx: u32,
        _n: SimTime,
    ) -> u64 {
        DMA_FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_report_patch_requirement() {
        assert!(ProtocolKind::Shrimp2.needs_kernel_patch());
        assert!(ProtocolKind::Flash.needs_kernel_patch());
        for k in [
            ProtocolKind::KernelOnly,
            ProtocolKind::Shrimp1,
            ProtocolKind::KeyBased,
            ProtocolKind::ExtShadow,
            ProtocolKind::ExtShadowPairwise,
            ProtocolKind::Repeated3,
            ProtocolKind::Repeated4,
            ProtocolKind::Repeated5,
        ] {
            assert!(!k.needs_kernel_patch(), "{k}");
        }
    }

    #[test]
    fn instruction_counts_match_paper() {
        // "a DMA operation can be initiated in 2 to 5 assembly
        // instructions" — for the paper's own schemes.
        assert_eq!(ProtocolKind::ExtShadow.user_instructions(), Some(2));
        assert_eq!(ProtocolKind::KeyBased.user_instructions(), Some(4));
        assert_eq!(ProtocolKind::Repeated5.user_instructions(), Some(5));
        assert_eq!(ProtocolKind::KernelOnly.user_instructions(), None);
    }

    #[test]
    fn every_kind_instantiates_itself() {
        for k in [
            ProtocolKind::KernelOnly,
            ProtocolKind::Shrimp1,
            ProtocolKind::Shrimp2,
            ProtocolKind::Flash,
            ProtocolKind::KeyBased,
            ProtocolKind::ExtShadow,
            ProtocolKind::ExtShadowPairwise,
            ProtocolKind::Repeated3,
            ProtocolKind::Repeated4,
            ProtocolKind::Repeated5,
        ] {
            assert_eq!(k.instantiate().kind(), k);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolKind::KeyBased.to_string(), "key-based");
        assert!(ProtocolKind::Repeated5.to_string().contains("5"));
    }
}
