//! Property tests for the repeated-passing FSM: spec-level soundness
//! against arbitrary shadow-access streams.
//!
//! The §3.3 rule: a transfer starts exactly when the last five shadow
//! accesses are `STORE, LOAD, STORE, LOAD, LOAD` with addresses
//! `D, S, D, S, D` and equal store payloads. Because any non-matching
//! access resets the machine, the five accesses of a started transfer
//! are always the *five most recent* ones — which this test checks
//! directly on the recorded stream, independently of the FSM's
//! internal bookkeeping.

use udma_testkit::prop::{any, vec, Strategy};
use udma_testkit::{prop_assert, prop_assert_eq, prop_assert_ne, props};

use std::cell::RefCell;
use std::rc::Rc;
use udma_bus::SimTime;
use udma_mem::{PhysAddr, PhysLayout, PhysMemory, PAGE_SIZE};
use udma_nic::protocol::{InitiationProtocol, Repeated};
use udma_nic::{EngineConfig, EngineCore, DMA_STARTED};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    St,
    Ld,
}

#[derive(Clone, Copy, Debug)]
struct Access {
    kind: Kind,
    /// Page index into a small pool (distinct pages, no page crossing).
    page: u64,
    /// Store payload (transfer size); small and nonzero.
    data: u64,
}

fn accesses() -> impl Strategy<Value = Vec<Access>> {
    vec(
        (any::<bool>(), 0u64..4, 1u64..4).prop_map(|(st, page, words)| Access {
            kind: if st { Kind::St } else { Kind::Ld },
            page,
            data: words * 8,
        }),
        0..64,
    )
}

fn pa(page: u64) -> PhysAddr {
    PhysAddr::new((2 + page) * PAGE_SIZE)
}

/// The declarative §3.3 window check for the 5-instruction variant.
fn window_matches_5(w: &[Access]) -> bool {
    assert_eq!(w.len(), 5);
    let kinds_ok = w[0].kind == Kind::St
        && w[1].kind == Kind::Ld
        && w[2].kind == Kind::St
        && w[3].kind == Kind::Ld
        && w[4].kind == Kind::Ld;
    kinds_ok
        && w[0].page == w[2].page
        && w[2].page == w[4].page
        && w[1].page == w[3].page
        && w[0].data == w[2].data
}

props! {
    config(cases = 512);

    /// Soundness: whenever the engine starts a transfer, the last five
    /// accesses of the stream satisfy the paper's rule, and the transfer
    /// carries exactly (src = loads' page, dst = stores' page, size =
    /// store payload).
    fn repeated5_transfers_only_on_valid_windows(stream in accesses()) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        let mut core = EngineCore::new(layout, mem, EngineConfig::default());
        let mut fsm = Repeated::five();

        let mut started_at = Vec::new();
        for (i, a) in stream.iter().enumerate() {
            match a.kind {
                Kind::St => {
                    fsm.shadow_store(&mut core, pa(a.page), 0, a.data, SimTime::ZERO)
                }
                Kind::Ld => {
                    let status = fsm.shadow_load(&mut core, pa(a.page), 0, SimTime::ZERO);
                    if status == DMA_STARTED {
                        started_at.push(i);
                    }
                }
            }
        }

        // One record per observed start, in order.
        let records = core.mover().records().to_vec();
        prop_assert_eq!(records.len(), started_at.len());

        for (rec, &i) in records.iter().zip(&started_at) {
            prop_assert!(i >= 4, "a start needs five accesses");
            let w = &stream[i - 4..=i];
            prop_assert!(
                window_matches_5(w),
                "transfer at access {i} without a valid window: {w:?}"
            );
            prop_assert_eq!(rec.dst, pa(w[0].page));
            prop_assert_eq!(rec.src, pa(w[1].page));
            prop_assert_eq!(rec.size, w[0].data);
        }
    }

    /// Completeness on clean streams: a stream that is a concatenation of
    /// valid 5-windows starts a transfer for every window.
    fn repeated5_accepts_back_to_back_valid_sequences(
        pairs in vec((0u64..3, 0u64..3, 1u64..4), 1..8),
    ) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        let mut core = EngineCore::new(layout, mem, EngineConfig::default());
        let mut fsm = Repeated::five();

        let mut expected = 0;
        for (dst_page, src_page, words) in pairs {
            let size = words * 8;
            let (d, s) = (pa(dst_page), pa(4 + src_page)); // disjoint pools
            fsm.shadow_store(&mut core, d, 0, size, SimTime::ZERO);
            prop_assert_ne!(fsm.shadow_load(&mut core, s, 0, SimTime::ZERO), udma_nic::DMA_FAILURE);
            fsm.shadow_store(&mut core, d, 0, size, SimTime::ZERO);
            prop_assert_ne!(fsm.shadow_load(&mut core, s, 0, SimTime::ZERO), udma_nic::DMA_FAILURE);
            let status = fsm.shadow_load(&mut core, d, 0, SimTime::ZERO);
            prop_assert_eq!(status, DMA_STARTED);
            expected += 1;
        }
        prop_assert_eq!(core.mover().records().len(), expected);
    }

    /// The 3-instruction FSM obeys its own (weaker) window rule:
    /// LOAD A, STORE B, LOAD A.
    fn repeated3_transfers_only_on_valid_windows(stream in accesses()) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        let mut core = EngineCore::new(layout, mem, EngineConfig::default());
        let mut fsm = Repeated::three();

        let mut started_at = Vec::new();
        for (i, a) in stream.iter().enumerate() {
            match a.kind {
                Kind::St => {
                    fsm.shadow_store(&mut core, pa(a.page), 0, a.data, SimTime::ZERO)
                }
                Kind::Ld => {
                    if fsm.shadow_load(&mut core, pa(a.page), 0, SimTime::ZERO) == DMA_STARTED {
                        started_at.push(i);
                    }
                }
            }
        }
        prop_assert_eq!(core.mover().records().len(), started_at.len());
        for (rec, &i) in core.mover().records().iter().zip(&started_at) {
            prop_assert!(i >= 2);
            let w = &stream[i - 2..=i];
            prop_assert!(
                w[0].kind == Kind::Ld && w[1].kind == Kind::St && w[2].kind == Kind::Ld
                    && w[0].page == w[2].page,
                "invalid 3-window at {i}: {w:?}"
            );
            prop_assert_eq!(rec.src, pa(w[0].page));
            prop_assert_eq!(rec.dst, pa(w[1].page));
        }
    }
}
