//! Typed physical/virtual addresses and page/frame numbers.
//!
//! The paper's protocols live and die on the distinction between a virtual
//! address (what user code names), a physical address (what the bus and the
//! DMA engine see) and a *shadow* physical address (a physical address with
//! extra meaning to the DMA engine). Newtypes keep those worlds apart at
//! compile time.

use std::fmt;

/// Log2 of the page size. 13 → 8 KiB pages, as on the DEC Alpha 21064.
pub const PAGE_SHIFT: u32 = 13;
/// Page size in bytes (8 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u64 = PAGE_SIZE - 1;

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident, $page:ident, $(#[$pdoc:meta])*) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// The zero address.
            pub const ZERO: $name = $name(0);

            /// Creates an address from a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw 64-bit value of the address.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the byte offset of the address within its page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & PAGE_MASK
            }

            /// Returns the page (frame) containing this address.
            #[inline]
            pub const fn page(self) -> $page {
                $page(self.0 >> PAGE_SHIFT)
            }

            /// Rounds the address down to its page boundary.
            #[inline]
            pub const fn align_down(self) -> Self {
                $name(self.0 & !PAGE_MASK)
            }

            /// Rounds the address up to the next page boundary
            /// (identity if already aligned). Returns `None` on overflow.
            #[inline]
            pub const fn align_up(self) -> Option<Self> {
                match self.0.checked_add(PAGE_MASK) {
                    Some(v) => Some($name(v & !PAGE_MASK)),
                    None => None,
                }
            }

            /// Whether the address lies on a page boundary.
            #[inline]
            pub const fn is_page_aligned(self) -> bool {
                self.0 & PAGE_MASK == 0
            }

            /// Whether the address is naturally aligned for an access of
            /// `size` bytes (`size` must be a power of two).
            #[inline]
            pub const fn is_aligned_to(self, size: u64) -> bool {
                self.0 & (size - 1) == 0
            }

            /// Adds a byte offset, returning `None` on overflow.
            #[inline]
            pub const fn checked_add(self, rhs: u64) -> Option<Self> {
                match self.0.checked_add(rhs) {
                    Some(v) => Some($name(v)),
                    None => None,
                }
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }

        impl core::ops::Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        $(#[$pdoc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $page(u64);

        impl $page {
            /// Creates a page number from its index.
            #[inline]
            pub const fn new(num: u64) -> Self {
                $page(num)
            }

            /// Returns the page index.
            #[inline]
            pub const fn number(self) -> u64 {
                self.0
            }

            /// Returns the address of the first byte of the page.
            #[inline]
            pub const fn base(self) -> $name {
                $name(self.0 << PAGE_SHIFT)
            }

            /// Returns the page `n` pages after this one.
            #[inline]
            pub const fn offset(self, n: u64) -> Self {
                $page(self.0 + n)
            }
        }

        impl fmt::Debug for $page {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($page), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $page {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

addr_type!(
    /// A physical address: what the memory controller, the bus and the DMA
    /// engine operate on. User code can never fabricate one — only the
    /// TLB/page-table path produces them.
    PhysAddr,
    PhysFrame,
    /// A physical page frame number.
);

addr_type!(
    /// A virtual address: what user instructions name. It is meaningless
    /// without a process's [`crate::PageTable`].
    VirtAddr,
    VirtPage,
    /// A virtual page number.
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic_round_trips() {
        let a = VirtAddr::new(3 * PAGE_SIZE + 17);
        assert_eq!(a.page_offset(), 17);
        assert_eq!(a.page().number(), 3);
        assert_eq!(a.page().base(), VirtAddr::new(3 * PAGE_SIZE));
        assert_eq!(a.align_down(), VirtAddr::new(3 * PAGE_SIZE));
        assert_eq!(a.align_up().unwrap(), VirtAddr::new(4 * PAGE_SIZE));
    }

    #[test]
    fn aligned_address_align_up_is_identity() {
        let a = PhysAddr::new(8 * PAGE_SIZE);
        assert!(a.is_page_aligned());
        assert_eq!(a.align_up().unwrap(), a);
    }

    #[test]
    fn align_up_overflow_is_none() {
        assert!(PhysAddr::new(u64::MAX).align_up().is_none());
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(PhysAddr::new(10).checked_add(5), Some(PhysAddr::new(15)));
        assert!(PhysAddr::new(u64::MAX).checked_add(1).is_none());
    }

    #[test]
    fn natural_alignment() {
        assert!(PhysAddr::new(0x1000).is_aligned_to(8));
        assert!(!PhysAddr::new(0x1004).is_aligned_to(8));
        assert!(PhysAddr::new(0x1004).is_aligned_to(4));
    }

    #[test]
    fn display_and_debug_are_hex() {
        let a = PhysAddr::new(0xBEEF);
        assert_eq!(format!("{a}"), "0xbeef");
        assert_eq!(format!("{a:?}"), "PhysAddr(0xbeef)");
        assert_eq!(format!("{a:x}"), "beef");
        assert_eq!(format!("{a:X}"), "BEEF");
    }

    #[test]
    fn phys_and_virt_are_distinct_types() {
        // This is a compile-time property; we just exercise From impls.
        let p: PhysAddr = 0x42u64.into();
        let v: VirtAddr = 0x42u64.into();
        assert_eq!(u64::from(p), u64::from(v));
    }

    #[test]
    fn frame_offset() {
        let f = PhysFrame::new(7);
        assert_eq!(f.offset(3).number(), 10);
    }

    #[test]
    fn add_operator() {
        assert_eq!(VirtAddr::new(8) + 8, VirtAddr::new(16));
    }
}
