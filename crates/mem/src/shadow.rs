//! Shadow addressing arithmetic (paper §2.3 and §3.2).
//!
//! A *shadow* physical address is an ordinary physical address with one
//! high bit set, placing it inside the DMA engine's decode window. When a
//! user process performs a load or store to a shadow-mapped virtual page,
//! the TLB emits `shadow(paddr)`; the engine strips the shadow bit and has
//! thereby been *securely handed* `paddr` — the process provably holds a
//! mapping for it, because only the kernel could have created the shadow
//! PTE.
//!
//! *Extended* shadow addressing (§3.2) additionally steals 1–2 bits just
//! below the shadow bit to carry a `CONTEXT_ID` chosen by the kernel at
//! map time, so the engine can tell *which process* issued each shadow
//! access without any kernel involvement at transfer time.

use crate::{PhysAddr, VirtAddr};

/// Bit-layout of the shadow window and the embedded context id.
///
/// ```text
///   bit:  shadow_bit   ctx_shift+ctx_bits-1 .. ctx_shift     0
///         ┌─────────┬──────────────────────────────┬─────────┐
///         │ SHADOW=1│          CONTEXT_ID          │  paddr  │
///         └─────────┴──────────────────────────────┴─────────┘
/// ```
///
/// With the defaults (`shadow_bit = 45`, `ctx_shift = 43`, `ctx_bits = 2`)
/// plain physical addresses may use bits `0..43` (8 TiB), and four
/// processes can own extended-shadow contexts — the paper envisions
/// "1–2 bits ... enough for most practical cases".
///
/// ```
/// use udma_mem::{PhysAddr, ShadowLayout};
///
/// let layout = ShadowLayout::default();
/// let s = layout.shadow_paddr_ctx(PhysAddr::new(0x2000), 3).unwrap();
/// assert!(layout.is_shadow(s));
/// assert_eq!(layout.decode(s), Some((PhysAddr::new(0x2000), 3)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowLayout {
    shadow_bit: u32,
    ctx_shift: u32,
    ctx_bits: u32,
}

impl Default for ShadowLayout {
    fn default() -> Self {
        ShadowLayout { shadow_bit: 45, ctx_shift: 43, ctx_bits: 2 }
    }
}

impl ShadowLayout {
    /// Creates a layout. `ctx_bits` may be zero (plain shadow addressing
    /// only, as in §2.3/§3.1/§3.3).
    ///
    /// # Panics
    ///
    /// Panics if the context field would overlap the shadow bit or exceed
    /// a 64-bit address.
    pub fn new(shadow_bit: u32, ctx_shift: u32, ctx_bits: u32) -> Self {
        assert!(shadow_bit < 64, "shadow bit out of range");
        assert!(ctx_shift + ctx_bits <= shadow_bit, "context field must sit below the shadow bit");
        ShadowLayout { shadow_bit, ctx_shift, ctx_bits }
    }

    /// The shadow-bit mask.
    #[inline]
    pub const fn shadow_mask(&self) -> u64 {
        1 << self.shadow_bit
    }

    /// Largest plain physical address + 1 that can be shadowed without
    /// colliding with the context field.
    #[inline]
    pub const fn plain_limit(&self) -> u64 {
        1 << self.ctx_shift
    }

    /// Number of distinct context ids carried in the address
    /// (`1` when `ctx_bits == 0`).
    #[inline]
    pub const fn num_contexts(&self) -> u32 {
        1 << self.ctx_bits
    }

    /// Whether `pa` lies inside the shadow window.
    #[inline]
    pub const fn is_shadow(&self, pa: PhysAddr) -> bool {
        pa.as_u64() & self.shadow_mask() != 0
    }

    /// `shadow(paddr)` with context id 0.
    ///
    /// Returns `None` if `paddr` is too large to shadow (it would collide
    /// with the context field or shadow bit).
    pub fn shadow_paddr(&self, pa: PhysAddr) -> Option<PhysAddr> {
        self.shadow_paddr_ctx(pa, 0)
    }

    /// `shadow(paddr)` carrying `ctx` in the CONTEXT_ID field (§3.2).
    ///
    /// Returns `None` if `paddr ≥ plain_limit()` or `ctx ≥ num_contexts()`.
    pub fn shadow_paddr_ctx(&self, pa: PhysAddr, ctx: u32) -> Option<PhysAddr> {
        if pa.as_u64() >= self.plain_limit() || ctx >= self.num_contexts() {
            return None;
        }
        Some(PhysAddr::new(self.shadow_mask() | ((ctx as u64) << self.ctx_shift) | pa.as_u64()))
    }

    /// Inverts `shadow(...)`: recovers the plain physical address and the
    /// context id. This is the engine's `shadow⁻¹` of §2.3.
    ///
    /// Returns `None` if `pa` is not a shadow address.
    pub fn decode(&self, pa: PhysAddr) -> Option<(PhysAddr, u32)> {
        if !self.is_shadow(pa) {
            return None;
        }
        let raw = pa.as_u64() & !self.shadow_mask();
        let ctx = (raw >> self.ctx_shift) & (self.num_contexts() as u64 - 1);
        let plain = raw & (self.plain_limit() - 1);
        Some((PhysAddr::new(plain), ctx as u32))
    }

    /// The conventional *virtual* address at which the kernel maps the
    /// shadow twin of `va` (same offset, shadow bit set in the VA too).
    /// Purely a software convention; nothing decodes it.
    pub fn shadow_vaddr(&self, va: VirtAddr) -> VirtAddr {
        VirtAddr::new(va.as_u64() | self.shadow_mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trip() {
        let l = ShadowLayout::default();
        let pa = PhysAddr::new(0x1_2345_6788);
        for ctx in 0..l.num_contexts() {
            let s = l.shadow_paddr_ctx(pa, ctx).unwrap();
            assert!(l.is_shadow(s));
            assert!(!l.is_shadow(pa));
            assert_eq!(l.decode(s), Some((pa, ctx)));
        }
    }

    #[test]
    fn decode_of_plain_address_is_none() {
        let l = ShadowLayout::default();
        assert_eq!(l.decode(PhysAddr::new(0x1000)), None);
    }

    #[test]
    fn oversized_paddr_rejected() {
        let l = ShadowLayout::default();
        assert!(l.shadow_paddr(PhysAddr::new(l.plain_limit())).is_none());
        assert!(l.shadow_paddr(PhysAddr::new(l.plain_limit() - 8)).is_some());
    }

    #[test]
    fn oversized_ctx_rejected() {
        let l = ShadowLayout::default();
        assert!(l.shadow_paddr_ctx(PhysAddr::new(0x100), 4).is_none());
    }

    #[test]
    fn zero_ctx_bits_layout() {
        let l = ShadowLayout::new(40, 40, 0);
        assert_eq!(l.num_contexts(), 1);
        let pa = PhysAddr::new(0xFEED_0000);
        let s = l.shadow_paddr(pa).unwrap();
        assert_eq!(l.decode(s), Some((pa, 0)));
        assert!(l.shadow_paddr_ctx(pa, 1).is_none());
    }

    #[test]
    fn shadow_vaddr_sets_bit() {
        let l = ShadowLayout::default();
        let va = VirtAddr::new(0x4_2000);
        let sva = l.shadow_vaddr(va);
        assert_eq!(sva.as_u64(), 0x4_2000 | (1 << 45));
    }

    #[test]
    #[should_panic(expected = "below the shadow bit")]
    fn overlapping_ctx_field_panics() {
        let _ = ShadowLayout::new(45, 44, 2);
    }

    #[test]
    fn distinct_contexts_distinct_addresses() {
        let l = ShadowLayout::default();
        let pa = PhysAddr::new(0x8000);
        let s0 = l.shadow_paddr_ctx(pa, 0).unwrap();
        let s1 = l.shadow_paddr_ctx(pa, 1).unwrap();
        let s3 = l.shadow_paddr_ctx(pa, 3).unwrap();
        assert_ne!(s0, s1);
        assert_ne!(s1, s3);
    }
}
