//! The machine's physical address map.

use crate::{PhysAddr, ShadowLayout};

/// Which region of the physical address space an address decodes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// Ordinary DRAM; `offset` is the byte offset from the start of RAM.
    Ram {
        /// Byte offset within RAM.
        offset: u64,
    },
    /// The NIC/DMA engine's memory-mapped register window; `offset` is the
    /// byte offset from the window base.
    NicRegs {
        /// Byte offset within the register window.
        offset: u64,
    },
    /// The NIC's shadow-address window (any address with the shadow bit
    /// set).
    Shadow,
    /// Nothing decodes here; an access raises a bus error.
    Unmapped,
}

/// The physical address map of the simulated workstation.
///
/// ```text
///   0 ──────────────┐ RAM (ram_size bytes)
///   nic_base ───────┤ NIC register window (nic_size bytes)
///   1 << shadow_bit ┤ NIC shadow window (decoded by ShadowLayout)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhysLayout {
    /// Installed DRAM bytes, starting at physical address 0.
    pub ram_size: u64,
    /// Base of the NIC's register window.
    pub nic_base: PhysAddr,
    /// Size of the NIC's register window in bytes.
    pub nic_size: u64,
    /// Shadow-window bit layout.
    pub shadow: ShadowLayout,
}

impl Default for PhysLayout {
    /// 64 MiB of RAM (the Alpha 3000/300 shipped with 32–256 MB), a 1 MiB
    /// NIC register window at `1 << 42`, and the default shadow layout.
    fn default() -> Self {
        PhysLayout {
            ram_size: 64 << 20,
            nic_base: PhysAddr::new(1 << 42),
            nic_size: 1 << 20,
            shadow: ShadowLayout::default(),
        }
    }
}

impl PhysLayout {
    /// Decodes a physical address to its region.
    pub fn region_of(&self, pa: PhysAddr) -> Region {
        if self.shadow.is_shadow(pa) {
            return Region::Shadow;
        }
        let raw = pa.as_u64();
        if raw < self.ram_size {
            return Region::Ram { offset: raw };
        }
        let nic = self.nic_base.as_u64();
        if raw >= nic && raw < nic + self.nic_size {
            return Region::NicRegs { offset: raw - nic };
        }
        Region::Unmapped
    }

    /// Whether the address belongs to the NIC (register window or shadow
    /// window) — i.e. whether an access to it is an *uncached device
    /// access* that crosses the I/O bus.
    pub fn is_device(&self, pa: PhysAddr) -> bool {
        matches!(self.region_of(pa), Region::NicRegs { .. } | Region::Shadow)
    }

    /// Validates internal consistency (RAM below the NIC window, NIC
    /// window below the shadow window, RAM shadowable).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated constraint. Called
    /// by machine builders at configuration time.
    pub fn validate(&self) {
        assert!(self.ram_size <= self.nic_base.as_u64(), "RAM overlaps the NIC register window");
        assert!(
            self.nic_base.as_u64() + self.nic_size <= self.shadow.shadow_mask(),
            "NIC register window overlaps the shadow window"
        );
        assert!(
            self.ram_size <= self.shadow.plain_limit(),
            "RAM too large to be shadow-addressable"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_decodes_regions() {
        let l = PhysLayout::default();
        l.validate();
        assert_eq!(l.region_of(PhysAddr::new(0x100)), Region::Ram { offset: 0x100 });
        assert_eq!(l.region_of(PhysAddr::new((1 << 42) + 0x40)), Region::NicRegs { offset: 0x40 });
        assert_eq!(l.region_of(PhysAddr::new(1 << 45)), Region::Shadow);
        assert_eq!(l.region_of(PhysAddr::new(1 << 30)), Region::Unmapped);
    }

    #[test]
    fn shadowed_ram_address_is_shadow_region() {
        let l = PhysLayout::default();
        let s = l.shadow.shadow_paddr(PhysAddr::new(0x2000)).unwrap();
        assert_eq!(l.region_of(s), Region::Shadow);
        assert!(l.is_device(s));
    }

    #[test]
    fn ram_is_not_device() {
        let l = PhysLayout::default();
        assert!(!l.is_device(PhysAddr::new(0)));
        assert!(l.is_device(l.nic_base));
    }

    #[test]
    fn region_boundaries_are_half_open() {
        let l = PhysLayout::default();
        assert_eq!(
            l.region_of(PhysAddr::new(l.ram_size - 1)),
            Region::Ram { offset: l.ram_size - 1 }
        );
        assert_eq!(l.region_of(PhysAddr::new(l.ram_size)), Region::Unmapped);
        let end = l.nic_base.as_u64() + l.nic_size;
        assert_eq!(l.region_of(PhysAddr::new(end)), Region::Unmapped);
        assert_eq!(l.region_of(PhysAddr::new(end - 1)), Region::NicRegs { offset: l.nic_size - 1 });
    }

    #[test]
    #[should_panic(expected = "RAM overlaps")]
    fn validate_catches_ram_overlap() {
        let l = PhysLayout {
            ram_size: 1 << 43,
            nic_base: PhysAddr::new(1 << 42),
            ..PhysLayout::default()
        };
        l.validate();
    }
}
