//! Memory substrate for the user-level DMA reproduction.
//!
//! This crate models everything the paper's machine needs below the bus:
//!
//! * typed physical and virtual addresses ([`PhysAddr`], [`VirtAddr`]) and
//!   page/frame numbers ([`VirtPage`], [`PhysFrame`]),
//! * byte-addressable sparse [`PhysMemory`] with a [`FrameAllocator`],
//! * per-process [`PageTable`]s with protection bits ([`Perms`]),
//! * a small [`Tlb`] with hit/miss statistics, and
//! * the *shadow addressing* arithmetic ([`ShadowLayout`]) that every
//!   user-level DMA protocol in the paper relies on (§2.3, §3.2).
//!
//! The page size is the DEC Alpha's 8 KiB ([`PAGE_SIZE`]), matching the
//! machine the paper evaluates on (Alpha 3000 model 300).
//!
//! # Example
//!
//! ```
//! use udma_mem::{FrameAllocator, PageTable, Perms, PhysMemory, VirtAddr, Access};
//!
//! # fn main() -> Result<(), udma_mem::MemFault> {
//! let mut mem = PhysMemory::new(1 << 24);
//! let mut alloc = FrameAllocator::new(1 << 24);
//! let mut pt = PageTable::new();
//!
//! let frame = alloc.alloc().expect("out of frames");
//! let va = VirtAddr::new(0x10000);
//! pt.map(va.page(), frame, Perms::READ_WRITE)?;
//!
//! let pa = pt.translate(va, Access::Write)?;
//! mem.write_u64(pa, 0xDEAD_BEEF)?;
//! assert_eq!(mem.read_u64(pa)?, 0xDEAD_BEEF);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod fault;
mod layout;
mod page_table;
mod perms;
mod phys;
mod shadow;
mod tlb;

pub use addr::{PhysAddr, PhysFrame, VirtAddr, VirtPage, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
pub use fault::MemFault;
pub use layout::{PhysLayout, Region};
pub use page_table::{Access, PageTable, PteEntry};
pub use perms::Perms;
pub use phys::{FrameAllocator, PhysMemory};
pub use shadow::ShadowLayout;
pub use tlb::{Tlb, TlbEntry, TlbStats};
