//! Page protection bits.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Access permissions attached to a page mapping.
///
/// The paper's protection argument (§2.1) is exactly about these bits: the
/// DMA engine only ever receives physical addresses that arrived through a
/// mapping carrying the right permissions, so it never needs its own
/// protection tables.
///
/// ```
/// use udma_mem::Perms;
///
/// let p = Perms::READ | Perms::WRITE;
/// assert!(p.allows(Perms::READ));
/// assert!(p.allows(Perms::READ_WRITE));
/// assert!(!Perms::READ.allows(Perms::WRITE));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No access at all.
    pub const NONE: Perms = Perms(0);
    /// Read access.
    pub const READ: Perms = Perms(0b01);
    /// Write access.
    pub const WRITE: Perms = Perms(0b10);
    /// Read and write access.
    pub const READ_WRITE: Perms = Perms(0b11);

    /// Whether every permission in `needed` is granted by `self`.
    #[inline]
    pub const fn allows(self, needed: Perms) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Whether the read bit is set.
    #[inline]
    pub const fn can_read(self) -> bool {
        self.0 & Self::READ.0 != 0
    }

    /// Whether the write bit is set.
    #[inline]
    pub const fn can_write(self) -> bool {
        self.0 & Self::WRITE.0 != 0
    }

    /// Whether no access is granted.
    #[inline]
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perms({self})")
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_is_subset_check() {
        assert!(Perms::READ_WRITE.allows(Perms::READ));
        assert!(Perms::READ_WRITE.allows(Perms::WRITE));
        assert!(Perms::READ_WRITE.allows(Perms::READ_WRITE));
        assert!(!Perms::READ.allows(Perms::WRITE));
        assert!(!Perms::WRITE.allows(Perms::READ));
        assert!(Perms::NONE.allows(Perms::NONE));
        assert!(!Perms::NONE.allows(Perms::READ));
    }

    #[test]
    fn or_combines() {
        assert_eq!(Perms::READ | Perms::WRITE, Perms::READ_WRITE);
        let mut p = Perms::READ;
        p |= Perms::WRITE;
        assert_eq!(p, Perms::READ_WRITE);
    }

    #[test]
    fn display_unix_style() {
        assert_eq!(Perms::NONE.to_string(), "--");
        assert_eq!(Perms::READ.to_string(), "r-");
        assert_eq!(Perms::WRITE.to_string(), "-w");
        assert_eq!(Perms::READ_WRITE.to_string(), "rw");
    }

    #[test]
    fn predicates() {
        assert!(Perms::READ.can_read());
        assert!(!Perms::READ.can_write());
        assert!(Perms::NONE.is_none());
        assert!(!Perms::WRITE.is_none());
    }
}
