//! A small translation lookaside buffer with statistics.

use crate::{Access, PageTable, Perms, PhysAddr, PhysFrame, VirtAddr, VirtPage};

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page tag.
    pub page: VirtPage,
    /// Cached physical frame.
    pub frame: PhysFrame,
    /// Cached permissions.
    pub perms: Perms,
}

/// Hit/miss/flush/eviction counters.
///
/// Shared by the CPU-side [`Tlb`] and the NI-side IOTLB (`udma-iommu`),
/// so sweeps can report both through one shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups satisfied by the TLB.
    pub hits: u64,
    /// Lookups that had to walk the page table.
    pub misses: u64,
    /// Whole-TLB flushes (context switches).
    pub flushes: u64,
    /// Valid entries displaced to make room for a fill (capacity
    /// pressure, as opposed to flushes or targeted invalidations).
    pub evictions: u64,
}

impl TlbStats {
    /// Hit ratio in `[0, 1]`; zero if no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully associative TLB with FIFO replacement.
///
/// The Alpha 21064 has a 32-entry data TLB; the default capacity matches.
/// The simulated kernel flushes it on every context switch (the 21064's
/// ASNs are not modelled — a flush is the conservative choice and charges
/// the refill cost to the switched-to process, which is one of the reasons
/// "operating systems are not getting faster" [Ousterhout 90] that the
/// paper leans on).
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    capacity: usize,
    next_victim: usize,
    stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(32)
    }
}

impl Tlb {
    /// Creates a TLB holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be nonzero");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_victim: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates `va` through the TLB, walking `pt` on a miss and
    /// inserting the result.
    ///
    /// Returns the physical address and whether the lookup hit.
    ///
    /// # Errors
    ///
    /// Propagates the page-table fault on a miss, or raises a protection
    /// fault if the cached entry lacks the needed permission (a cached
    /// entry never grants *more* than the page table did at fill time).
    pub fn translate(
        &mut self,
        pt: &PageTable,
        va: VirtAddr,
        access: Access,
    ) -> Result<(PhysAddr, bool), crate::MemFault> {
        let page = va.page();
        if let Some(e) = self.entries.iter().find(|e| e.page == page) {
            let needed = access.required_perms();
            if e.perms.allows(needed) {
                self.stats.hits += 1;
                return Ok((e.frame.base() + va.page_offset(), true));
            }
            // Permission miss: fall through to the authoritative walk so a
            // `protect()` upgrade takes effect (hardware would fault to the
            // kernel, which would then upgrade the entry).
        }
        self.stats.misses += 1;
        let pa = pt.translate(va, access)?;
        let pte = pt.entry(page).expect("translate succeeded");
        self.insert(TlbEntry { page, frame: pte.frame, perms: pte.perms });
        Ok((pa, false))
    }

    /// Inserts an entry, evicting FIFO when full. An existing entry for
    /// the same page is replaced in place.
    pub fn insert(&mut self, entry: TlbEntry) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.page == entry.page) {
            *e = entry;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.entries[self.next_victim] = entry;
            self.next_victim = (self.next_victim + 1) % self.capacity;
            self.stats.evictions += 1;
        }
    }

    /// Invalidates the entry for one page, if present.
    pub fn flush_page(&mut self, page: VirtPage) {
        self.entries.retain(|e| e.page != page);
    }

    /// Invalidates everything (context switch).
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.next_victim = 0;
        self.stats.flushes += 1;
    }

    /// Current statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameAllocator, PAGE_SIZE};

    fn small_world() -> (PageTable, Tlb) {
        let mut pt = PageTable::new();
        let mut alloc = FrameAllocator::new(64 * PAGE_SIZE);
        for p in 0..8u64 {
            let f = alloc.alloc().unwrap();
            pt.map(VirtPage::new(p), f, Perms::READ_WRITE).unwrap();
        }
        (pt, Tlb::new(4))
    }

    #[test]
    fn miss_then_hit() {
        let (pt, mut tlb) = small_world();
        let va = VirtAddr::new(0x18);
        let (pa1, hit1) = tlb.translate(&pt, va, Access::Read).unwrap();
        assert!(!hit1);
        let (pa2, hit2) = tlb.translate(&pt, va, Access::Read).unwrap();
        assert!(hit2);
        assert_eq!(pa1, pa2);
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1, flushes: 0, evictions: 0 });
    }

    #[test]
    fn fifo_eviction() {
        let (pt, mut tlb) = small_world();
        for p in 0..5u64 {
            tlb.translate(&pt, VirtPage::new(p).base(), Access::Read).unwrap();
        }
        assert_eq!(tlb.len(), 4);
        assert_eq!(tlb.stats().evictions, 1);
        // Page 0 was the FIFO victim; touching it again misses.
        let (_, hit) = tlb.translate(&pt, VirtAddr::new(0), Access::Read).unwrap();
        assert!(!hit);
        assert_eq!(tlb.stats().evictions, 2);
        // Page 2 is still resident.
        let (_, hit) = tlb.translate(&pt, VirtPage::new(2).base(), Access::Read).unwrap();
        assert!(hit);
    }

    #[test]
    fn flush_all_counts_and_clears() {
        let (pt, mut tlb) = small_world();
        tlb.translate(&pt, VirtAddr::new(0), Access::Read).unwrap();
        tlb.flush_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().flushes, 1);
        let (_, hit) = tlb.translate(&pt, VirtAddr::new(0), Access::Read).unwrap();
        assert!(!hit);
    }

    #[test]
    fn flush_page_is_selective() {
        let (pt, mut tlb) = small_world();
        tlb.translate(&pt, VirtPage::new(0).base(), Access::Read).unwrap();
        tlb.translate(&pt, VirtPage::new(1).base(), Access::Read).unwrap();
        tlb.flush_page(VirtPage::new(0));
        let (_, hit) = tlb.translate(&pt, VirtPage::new(1).base(), Access::Read).unwrap();
        assert!(hit);
        let (_, hit) = tlb.translate(&pt, VirtPage::new(0).base(), Access::Read).unwrap();
        assert!(!hit);
    }

    #[test]
    fn cached_entry_enforces_perms_via_rewalk() {
        let mut pt = PageTable::new();
        pt.map(VirtPage::new(0), PhysFrame::new(0), Perms::READ).unwrap();
        let mut tlb = Tlb::new(4);
        tlb.translate(&pt, VirtAddr::new(0), Access::Read).unwrap();
        // Write through a read-only cached entry faults via the table walk.
        assert!(tlb.translate(&pt, VirtAddr::new(0), Access::Write).is_err());
        // After an upgrade the rewalk picks up the new permission.
        pt.protect(VirtPage::new(0), Perms::READ_WRITE).unwrap();
        assert!(tlb.translate(&pt, VirtAddr::new(0), Access::Write).is_ok());
    }

    #[test]
    fn fault_propagates_and_counts_miss() {
        let pt = PageTable::new();
        let mut tlb = Tlb::new(4);
        assert!(tlb.translate(&pt, VirtAddr::new(0x9000), Access::Read).is_err());
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn hit_ratio() {
        let (pt, mut tlb) = small_world();
        assert_eq!(tlb.stats().hit_ratio(), 0.0);
        tlb.translate(&pt, VirtAddr::new(0), Access::Read).unwrap();
        tlb.translate(&pt, VirtAddr::new(8), Access::Read).unwrap();
        assert!((tlb.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insert_replaces_same_page() {
        let mut tlb = Tlb::new(2);
        tlb.insert(TlbEntry {
            page: VirtPage::new(1),
            frame: PhysFrame::new(1),
            perms: Perms::READ,
        });
        tlb.insert(TlbEntry {
            page: VirtPage::new(1),
            frame: PhysFrame::new(2),
            perms: Perms::READ_WRITE,
        });
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
