//! Physical memory and frame allocation.

use crate::{MemFault, PhysAddr, PhysFrame, PAGE_SHIFT, PAGE_SIZE};
use std::collections::{BTreeSet, HashMap};

/// Byte-addressable physical memory, stored sparsely one frame at a time.
///
/// Frames are materialised (zero-filled) on first touch, so a machine with
/// a multi-gigabyte physical address space costs only what it actually
/// uses. All multi-byte accesses are little-endian, like the Alpha.
///
/// ```
/// use udma_mem::{PhysMemory, PhysAddr};
///
/// # fn main() -> Result<(), udma_mem::MemFault> {
/// let mut mem = PhysMemory::new(1 << 20);
/// mem.write_u64(PhysAddr::new(0x100), 42)?;
/// assert_eq!(mem.read_u64(PhysAddr::new(0x100))?, 42);
/// // Untouched memory reads as zero.
/// assert_eq!(mem.read_u64(PhysAddr::new(0x8000))?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct PhysMemory {
    frames: HashMap<u64, Box<[u8]>>,
    size: u64,
    /// When `Some((line_bytes, set))`, every write marks the cache lines
    /// it covers. Coherence tests and the writeback accounting use this
    /// to ask "which lines changed since the last sync" at line grain.
    dirty: Option<(u64, BTreeSet<u64>)>,
}

impl PhysMemory {
    /// Creates a physical memory of `size` bytes (rounded up to whole
    /// pages). Accesses at or beyond `size` raise [`MemFault::BusError`].
    pub fn new(size: u64) -> Self {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        PhysMemory { frames: HashMap::new(), size, dirty: None }
    }

    /// Starts tracking writes at `line_bytes` granularity. Any lines
    /// already recorded at a different granularity are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero or not a power of two.
    pub fn track_lines(&mut self, line_bytes: u64) {
        assert!(line_bytes.is_power_of_two(), "dirty-line granularity must be a power of two");
        self.dirty = Some((line_bytes, BTreeSet::new()));
    }

    /// The line-base addresses written since tracking started (or since
    /// the last [`clear_dirty_lines`](Self::clear_dirty_lines)), in
    /// ascending order. Empty when tracking is off.
    pub fn dirty_lines(&self) -> Vec<u64> {
        match &self.dirty {
            Some((_, set)) => set.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Forgets all recorded dirty lines (tracking stays on).
    pub fn clear_dirty_lines(&mut self) {
        if let Some((_, set)) = &mut self.dirty {
            set.clear();
        }
    }

    fn mark_dirty(&mut self, pa: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some((line_bytes, set)) = &mut self.dirty {
            let mut base = pa & !(*line_bytes - 1);
            let end = pa + len;
            while base < end {
                set.insert(base);
                base += *line_bytes;
            }
        }
    }

    /// Total installed bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames actually materialised so far.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn check(&self, pa: PhysAddr, len: u64) -> Result<(), MemFault> {
        let end = pa.checked_add(len).ok_or(MemFault::BusError { pa })?;
        if end.as_u64() > self.size || len == 0 && pa.as_u64() >= self.size {
            return Err(MemFault::BusError { pa });
        }
        Ok(())
    }

    fn frame_mut(&mut self, frame: u64) -> &mut [u8] {
        self.frames.entry(frame).or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `pa`, crossing frame boundaries
    /// as needed.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if any byte of the range is outside installed
    /// memory.
    pub fn read_bytes(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), MemFault> {
        self.check(pa, buf.len() as u64)?;
        let mut addr = pa.as_u64();
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            match self.frames.get(&frame) {
                Some(data) => buf[done..done + chunk].copy_from_slice(&data[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
            addr += chunk as u64;
        }
        Ok(())
    }

    /// Writes `buf` starting at `pa`, crossing frame boundaries as needed.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if any byte of the range is outside installed
    /// memory.
    pub fn write_bytes(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<(), MemFault> {
        self.check(pa, buf.len() as u64)?;
        self.mark_dirty(pa.as_u64(), buf.len() as u64);
        let mut addr = pa.as_u64();
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            self.frame_mut(frame)[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
            addr += chunk as u64;
        }
        Ok(())
    }

    /// Reads a naturally aligned little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`MemFault::Misaligned`] if `pa` is not 8-byte aligned;
    /// [`MemFault::BusError`] if outside installed memory.
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64, MemFault> {
        if !pa.is_aligned_to(8) {
            return Err(MemFault::Misaligned { addr: pa.as_u64(), size: 8 });
        }
        let mut b = [0u8; 8];
        self.read_bytes(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a naturally aligned little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`MemFault::Misaligned`] if `pa` is not 8-byte aligned;
    /// [`MemFault::BusError`] if outside installed memory.
    pub fn write_u64(&mut self, pa: PhysAddr, value: u64) -> Result<(), MemFault> {
        if !pa.is_aligned_to(8) {
            return Err(MemFault::Misaligned { addr: pa.as_u64(), size: 8 });
        }
        self.write_bytes(pa, &value.to_le_bytes())
    }

    /// Copies `len` bytes from `src` to `dst` within physical memory, as
    /// the DMA data mover does. Handles overlapping ranges like
    /// `memmove`.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if either range is outside installed memory.
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) -> Result<(), MemFault> {
        self.check(src, len)?;
        self.check(dst, len)?;
        // Simple and correct: buffer the source. DMA transfers in the
        // evaluation are at most a few pages.
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(src, &mut buf)?;
        self.write_bytes(dst, &buf)
    }

    /// Fills `len` bytes at `pa` with `byte`.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the range is outside installed memory.
    pub fn fill(&mut self, pa: PhysAddr, len: u64, byte: u8) -> Result<(), MemFault> {
        self.check(pa, len)?;
        let buf = vec![byte; len as usize];
        self.write_bytes(pa, &buf)
    }
}

/// A bump-plus-free-list allocator of physical page frames.
///
/// The model kernel uses this to back user mappings and shadow windows.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    next: u64,
    limit: u64,
    free: Vec<PhysFrame>,
}

impl FrameAllocator {
    /// Creates an allocator over `[0, size)` bytes of physical memory.
    pub fn new(size: u64) -> Self {
        FrameAllocator { next: 0, limit: size >> PAGE_SHIFT, free: Vec::new() }
    }

    /// Creates an allocator over frames `[base_frame, base_frame + count)`.
    pub fn with_range(base_frame: u64, count: u64) -> Self {
        FrameAllocator { next: base_frame, limit: base_frame + count, free: Vec::new() }
    }

    /// Allocates a frame, reusing freed frames first. Returns `None` when
    /// physical memory is exhausted.
    pub fn alloc(&mut self) -> Option<PhysFrame> {
        if let Some(f) = self.free.pop() {
            return Some(f);
        }
        if self.next < self.limit {
            let f = PhysFrame::new(self.next);
            self.next += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Returns a frame to the allocator.
    pub fn free(&mut self, frame: PhysFrame) {
        debug_assert!(frame.number() < self.limit);
        self.free.push(frame);
    }

    /// Number of frames still available.
    pub fn available(&self) -> u64 {
        (self.limit - self.next) + self.free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_on_first_touch() {
        let mem = PhysMemory::new(1 << 20);
        let mut buf = [0xFFu8; 16];
        mem.read_bytes(PhysAddr::new(0x4000), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn read_write_round_trip_across_frame_boundary() {
        let mut mem = PhysMemory::new(1 << 20);
        let pa = PhysAddr::new(PAGE_SIZE - 4);
        let data: Vec<u8> = (0..32).collect();
        mem.write_bytes(pa, &data).unwrap();
        let mut back = vec![0u8; 32];
        mem.read_bytes(pa, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn u64_alignment_enforced() {
        let mut mem = PhysMemory::new(1 << 20);
        assert_eq!(
            mem.write_u64(PhysAddr::new(0x101), 1),
            Err(MemFault::Misaligned { addr: 0x101, size: 8 })
        );
        assert_eq!(
            mem.read_u64(PhysAddr::new(0x104)),
            Err(MemFault::Misaligned { addr: 0x104, size: 8 })
        );
    }

    #[test]
    fn u64_little_endian() {
        let mut mem = PhysMemory::new(1 << 20);
        mem.write_u64(PhysAddr::new(0x200), 0x0102_0304_0506_0708).unwrap();
        let mut b = [0u8; 8];
        mem.read_bytes(PhysAddr::new(0x200), &mut b).unwrap();
        assert_eq!(b, [8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn out_of_range_is_bus_error() {
        let mut mem = PhysMemory::new(PAGE_SIZE);
        let pa = PhysAddr::new(PAGE_SIZE);
        assert!(matches!(mem.read_u64(pa), Err(MemFault::BusError { .. })));
        let pa = PhysAddr::new(PAGE_SIZE - 4);
        assert!(matches!(mem.write_bytes(pa, &[0u8; 8]), Err(MemFault::BusError { .. })));
    }

    #[test]
    fn overflowing_range_is_bus_error() {
        let mem = PhysMemory::new(PAGE_SIZE);
        let mut buf = [0u8; 4];
        assert!(matches!(
            mem.read_bytes(PhysAddr::new(u64::MAX - 1), &mut buf),
            Err(MemFault::BusError { .. })
        ));
    }

    #[test]
    fn copy_moves_data() {
        let mut mem = PhysMemory::new(1 << 20);
        let data: Vec<u8> = (0..100).collect();
        mem.write_bytes(PhysAddr::new(0x1000), &data).unwrap();
        mem.copy(PhysAddr::new(0x1000), PhysAddr::new(0x9000), 100).unwrap();
        let mut back = vec![0u8; 100];
        mem.read_bytes(PhysAddr::new(0x9000), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn copy_overlapping_is_memmove() {
        let mut mem = PhysMemory::new(1 << 20);
        let data: Vec<u8> = (0..64).collect();
        mem.write_bytes(PhysAddr::new(0x1000), &data).unwrap();
        mem.copy(PhysAddr::new(0x1000), PhysAddr::new(0x1010), 64).unwrap();
        let mut back = vec![0u8; 64];
        mem.read_bytes(PhysAddr::new(0x1010), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn fill_sets_bytes() {
        let mut mem = PhysMemory::new(1 << 20);
        mem.fill(PhysAddr::new(0x2000), 16, 0xAB).unwrap();
        let mut b = [0u8; 16];
        mem.read_bytes(PhysAddr::new(0x2000), &mut b).unwrap();
        assert_eq!(b, [0xAB; 16]);
    }

    #[test]
    fn size_rounds_up_to_pages() {
        let mem = PhysMemory::new(1);
        assert_eq!(mem.size(), PAGE_SIZE);
    }

    #[test]
    fn allocator_unique_frames_and_reuse() {
        let mut a = FrameAllocator::new(4 * PAGE_SIZE);
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert_ne!(f0, f1);
        assert_eq!(a.available(), 2);
        a.free(f0);
        assert_eq!(a.available(), 3);
        assert_eq!(a.alloc().unwrap(), f0);
        let _ = a.alloc().unwrap();
        let _ = a.alloc().unwrap();
        assert_eq!(a.alloc(), None);
    }

    #[test]
    fn dirty_line_tracking_marks_written_lines() {
        let mut mem = PhysMemory::new(1 << 20);
        assert!(mem.dirty_lines().is_empty(), "tracking off by default");
        mem.track_lines(32);
        mem.write_u64(PhysAddr::new(0x108), 1).unwrap();
        assert_eq!(mem.dirty_lines(), vec![0x100]);
        // A write spanning two lines marks both; copy/fill funnel
        // through write_bytes and are tracked too.
        mem.write_bytes(PhysAddr::new(0x13C), &[1u8; 8]).unwrap();
        assert_eq!(mem.dirty_lines(), vec![0x100, 0x120, 0x140]);
        mem.clear_dirty_lines();
        assert!(mem.dirty_lines().is_empty());
        mem.fill(PhysAddr::new(0x200), 64, 0xEE).unwrap();
        assert_eq!(mem.dirty_lines(), vec![0x200, 0x220]);
        mem.copy(PhysAddr::new(0x200), PhysAddr::new(0x400), 32).unwrap();
        assert_eq!(mem.dirty_lines(), vec![0x200, 0x220, 0x400]);
        // Reads never mark.
        let mut b = [0u8; 8];
        mem.read_bytes(PhysAddr::new(0x800), &mut b).unwrap();
        assert_eq!(mem.dirty_lines(), vec![0x200, 0x220, 0x400]);
    }

    #[test]
    fn failed_write_marks_nothing() {
        let mut mem = PhysMemory::new(PAGE_SIZE);
        mem.track_lines(32);
        assert!(mem.write_bytes(PhysAddr::new(PAGE_SIZE - 4), &[0u8; 8]).is_err());
        assert!(mem.dirty_lines().is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_tracking_granularity_panics() {
        let mut mem = PhysMemory::new(PAGE_SIZE);
        mem.track_lines(24);
    }

    #[test]
    fn allocator_with_range() {
        let mut a = FrameAllocator::with_range(100, 2);
        assert_eq!(a.alloc().unwrap().number(), 100);
        assert_eq!(a.alloc().unwrap().number(), 101);
        assert_eq!(a.alloc(), None);
    }
}
