//! Memory fault (exception) types.

use crate::{Perms, PhysAddr, VirtAddr};
use std::error::Error;
use std::fmt;

/// A memory access fault.
///
/// In the simulated machine a fault terminates the offending process, just
/// as a SIGSEGV/SIGBUS would on the paper's OSF/1 host. Faults are the
/// mechanism by which the protection half of the paper's argument is
/// enforced: a process that tries to *name* memory it has no mapping for
/// never produces a bus transaction at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFault {
    /// The virtual address has no mapping in the current page table.
    Unmapped {
        /// Faulting virtual address.
        va: VirtAddr,
    },
    /// The mapping exists but does not grant the required permission.
    Protection {
        /// Faulting virtual address.
        va: VirtAddr,
        /// Permission the access needed.
        needed: Perms,
        /// Permission the mapping grants.
        granted: Perms,
    },
    /// The access was not naturally aligned for its size.
    Misaligned {
        /// Raw address of the access (virtual or physical depending on the
        /// stage that detected it).
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// A physical access fell outside the installed memory and all device
    /// windows.
    BusError {
        /// Faulting physical address.
        pa: PhysAddr,
    },
    /// The virtual page is already mapped (returned by `PageTable::map`).
    AlreadyMapped {
        /// Conflicting virtual page base address.
        va: VirtAddr,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { va } => write!(f, "unmapped virtual address {va}"),
            MemFault::Protection { va, needed, granted } => write!(
                f,
                "protection fault at {va}: access needs {needed}, mapping grants {granted}"
            ),
            MemFault::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#x}")
            }
            MemFault::BusError { pa } => write!(f, "bus error at physical address {pa}"),
            MemFault::AlreadyMapped { va } => {
                write!(f, "virtual page at {va} is already mapped")
            }
        }
    }
}

impl Error for MemFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let f = MemFault::Unmapped { va: VirtAddr::new(0x2000) };
        assert_eq!(f.to_string(), "unmapped virtual address 0x2000");

        let f = MemFault::Protection {
            va: VirtAddr::new(0x2000),
            needed: Perms::WRITE,
            granted: Perms::READ,
        };
        assert!(f.to_string().contains("needs -w"));
        assert!(f.to_string().contains("grants r-"));

        let f = MemFault::Misaligned { addr: 0x1003, size: 8 };
        assert_eq!(f.to_string(), "misaligned 8-byte access at 0x1003");

        let f = MemFault::BusError { pa: PhysAddr::new(0xFFFF_0000) };
        assert!(f.to_string().contains("bus error"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(MemFault::Unmapped { va: VirtAddr::ZERO });
    }
}
