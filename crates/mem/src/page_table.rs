//! Per-process page tables.

use crate::{MemFault, Perms, PhysAddr, PhysFrame, VirtAddr, VirtPage};
use std::collections::BTreeMap;

/// The kind of access an instruction performs, used for permission checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl Access {
    /// The permission this access requires.
    pub fn required_perms(self) -> Perms {
        match self {
            Access::Read => Perms::READ,
            Access::Write => Perms::WRITE,
        }
    }
}

/// A single page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PteEntry {
    /// Backing physical frame.
    pub frame: PhysFrame,
    /// Granted permissions.
    pub perms: Perms,
}

/// A per-process virtual→physical mapping with protection bits.
///
/// This models what the OSF/1 kernel keeps per process and what the TLB
/// caches. The paper's shadow mappings are ordinary entries here whose
/// frames happen to lie inside the DMA engine's shadow window — exactly
/// the trick of §2.3: "the operating system is responsible for creating
/// both mappings at memory allocation time".
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    entries: BTreeMap<VirtPage, PteEntry>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a mapping from `page` to `frame` with `perms`.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if `page` already has an entry; unmap it
    /// first (the model kernel never silently remaps).
    pub fn map(&mut self, page: VirtPage, frame: PhysFrame, perms: Perms) -> Result<(), MemFault> {
        if self.entries.contains_key(&page) {
            return Err(MemFault::AlreadyMapped { va: page.base() });
        }
        self.entries.insert(page, PteEntry { frame, perms });
        Ok(())
    }

    /// Removes the mapping for `page`, returning the old entry if any.
    pub fn unmap(&mut self, page: VirtPage) -> Option<PteEntry> {
        self.entries.remove(&page)
    }

    /// Changes the permissions of an existing mapping.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] if `page` has no entry.
    pub fn protect(&mut self, page: VirtPage, perms: Perms) -> Result<(), MemFault> {
        match self.entries.get_mut(&page) {
            Some(e) => {
                e.perms = perms;
                Ok(())
            }
            None => Err(MemFault::Unmapped { va: page.base() }),
        }
    }

    /// Looks up the entry for `page` without a permission check.
    pub fn entry(&self, page: VirtPage) -> Option<&PteEntry> {
        self.entries.get(&page)
    }

    /// Translates `va` for an access of kind `access`.
    ///
    /// This is the software walk the kernel performs in Figure 1's
    /// `virtual_to_physical`, and the ground truth the [`crate::Tlb`]
    /// caches.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] if no entry exists;
    /// [`MemFault::Protection`] if the entry lacks the needed permission.
    pub fn translate(&self, va: VirtAddr, access: Access) -> Result<PhysAddr, MemFault> {
        let e = self.entries.get(&va.page()).ok_or(MemFault::Unmapped { va })?;
        let needed = access.required_perms();
        if !e.perms.allows(needed) {
            return Err(MemFault::Protection { va, needed, granted: e.perms });
        }
        Ok(e.frame.base() + va.page_offset())
    }

    /// Translates a whole byte range, checking every page it touches.
    ///
    /// This is the `check_size()` of Figure 1: kernel-level DMA validates
    /// the *entire* transfer range, which is what lets it safely cross page
    /// boundaries (user-level DMA cannot, see the NIC crate).
    ///
    /// Returns the physical address of the first byte.
    ///
    /// # Errors
    ///
    /// As for [`translate`](Self::translate), for the first failing page.
    pub fn translate_range(
        &self,
        va: VirtAddr,
        len: u64,
        access: Access,
    ) -> Result<PhysAddr, MemFault> {
        let first = self.translate(va, access)?;
        if len == 0 {
            return Ok(first);
        }
        let last = va.checked_add(len - 1).ok_or(MemFault::Unmapped { va })?;
        let mut page = va.page();
        while page <= last.page() {
            self.translate(page.base(), access)?;
            page = page.offset(1);
        }
        Ok(first)
    }

    /// Number of mappings installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no mappings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(page, entry)` pairs in virtual-address order.
    pub fn iter(&self) -> impl Iterator<Item = (&VirtPage, &PteEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn table_with(page: u64, frame: u64, perms: Perms) -> PageTable {
        let mut pt = PageTable::new();
        pt.map(VirtPage::new(page), PhysFrame::new(frame), perms).unwrap();
        pt
    }

    #[test]
    fn translate_preserves_offset() {
        let pt = table_with(2, 7, Perms::READ_WRITE);
        let va = VirtAddr::new(2 * PAGE_SIZE + 0x123);
        let pa = pt.translate(va, Access::Read).unwrap();
        assert_eq!(pa, PhysAddr::new(7 * PAGE_SIZE + 0x123));
    }

    #[test]
    fn unmapped_faults() {
        let pt = PageTable::new();
        let va = VirtAddr::new(0x5000);
        assert_eq!(pt.translate(va, Access::Read), Err(MemFault::Unmapped { va }));
    }

    #[test]
    fn protection_faults_on_write_to_readonly() {
        let pt = table_with(0, 0, Perms::READ);
        let va = VirtAddr::new(0x8);
        assert!(pt.translate(va, Access::Read).is_ok());
        assert_eq!(
            pt.translate(va, Access::Write),
            Err(MemFault::Protection { va, needed: Perms::WRITE, granted: Perms::READ })
        );
    }

    #[test]
    fn write_only_page_rejects_reads() {
        let pt = table_with(0, 0, Perms::WRITE);
        let va = VirtAddr::new(0x8);
        assert!(pt.translate(va, Access::Write).is_ok());
        assert!(matches!(pt.translate(va, Access::Read), Err(MemFault::Protection { .. })));
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = table_with(1, 1, Perms::READ);
        assert_eq!(
            pt.map(VirtPage::new(1), PhysFrame::new(2), Perms::READ),
            Err(MemFault::AlreadyMapped { va: VirtPage::new(1).base() })
        );
    }

    #[test]
    fn unmap_then_translate_faults() {
        let mut pt = table_with(1, 1, Perms::READ);
        let old = pt.unmap(VirtPage::new(1)).unwrap();
        assert_eq!(old.frame, PhysFrame::new(1));
        assert!(pt.translate(VirtPage::new(1).base(), Access::Read).is_err());
        assert!(pt.unmap(VirtPage::new(1)).is_none());
    }

    #[test]
    fn protect_changes_perms() {
        let mut pt = table_with(1, 1, Perms::READ);
        pt.protect(VirtPage::new(1), Perms::READ_WRITE).unwrap();
        assert!(pt.translate(VirtPage::new(1).base(), Access::Write).is_ok());
        assert!(pt.protect(VirtPage::new(9), Perms::READ).is_err());
    }

    #[test]
    fn translate_range_checks_every_page() {
        let mut pt = PageTable::new();
        pt.map(VirtPage::new(0), PhysFrame::new(10), Perms::READ_WRITE).unwrap();
        pt.map(VirtPage::new(1), PhysFrame::new(11), Perms::READ).unwrap();
        // page 2 unmapped

        // Read across pages 0..=1 ok.
        let pa =
            pt.translate_range(VirtAddr::new(0x10), 2 * PAGE_SIZE - 0x20, Access::Read).unwrap();
        assert_eq!(pa, PhysAddr::new(10 * PAGE_SIZE + 0x10));

        // Write across pages 0..=1 faults on page 1.
        assert!(matches!(
            pt.translate_range(VirtAddr::new(0x10), PAGE_SIZE, Access::Write),
            Err(MemFault::Protection { .. })
        ));

        // Range reaching page 2 faults unmapped.
        assert!(matches!(
            pt.translate_range(VirtAddr::new(0x0), 3 * PAGE_SIZE, Access::Read),
            Err(MemFault::Unmapped { .. })
        ));
    }

    #[test]
    fn translate_range_zero_len() {
        let pt = table_with(0, 0, Perms::READ);
        assert!(pt.translate_range(VirtAddr::new(0x8), 0, Access::Read).is_ok());
    }

    #[test]
    fn iter_in_va_order() {
        let mut pt = PageTable::new();
        pt.map(VirtPage::new(5), PhysFrame::new(1), Perms::READ).unwrap();
        pt.map(VirtPage::new(2), PhysFrame::new(2), Perms::READ).unwrap();
        let pages: Vec<u64> = pt.iter().map(|(p, _)| p.number()).collect();
        assert_eq!(pages, vec![2, 5]);
        assert_eq!(pt.len(), 2);
        assert!(!pt.is_empty());
    }
}
