//! Property-based tests for the memory substrate.

use udma_testkit::prop::{any, vec};
use udma_testkit::{prop_assert, prop_assert_eq, props};

use udma_mem::{
    Access, FrameAllocator, MemFault, PageTable, Perms, PhysAddr, PhysMemory, ShadowLayout,
    VirtAddr, VirtPage, PAGE_SIZE,
};

props! {
    /// shadow ∘ decode is the identity on (paddr, ctx) for every layout.
    fn shadow_round_trip(
        shadow_bit in 20u32..60,
        ctx_bits in 0u32..3,
        pa_raw in 0u64..(1 << 19),
        ctx in 0u32..8,
    ) {
        let ctx_shift = shadow_bit - ctx_bits;
        let layout = ShadowLayout::new(shadow_bit, ctx_shift, ctx_bits);
        let pa = PhysAddr::new(pa_raw);
        if pa_raw >= layout.plain_limit() {
            prop_assert!(layout.shadow_paddr_ctx(pa, ctx.min(layout.num_contexts() - 1)).is_none());
        } else if ctx < layout.num_contexts() {
            let s = layout.shadow_paddr_ctx(pa, ctx).unwrap();
            prop_assert!(layout.is_shadow(s));
            prop_assert_eq!(layout.decode(s), Some((pa, ctx)));
        } else {
            prop_assert!(layout.shadow_paddr_ctx(pa, ctx).is_none());
        }
    }

    /// Distinct (paddr, ctx) pairs produce distinct shadow addresses.
    fn shadow_is_injective(
        a in 0u64..(1 << 16),
        b in 0u64..(1 << 16),
        ca in 0u32..4,
        cb in 0u32..4,
    ) {
        let layout = ShadowLayout::default();
        let sa = layout.shadow_paddr_ctx(PhysAddr::new(a * 8), ca).unwrap();
        let sb = layout.shadow_paddr_ctx(PhysAddr::new(b * 8), cb).unwrap();
        prop_assert_eq!(sa == sb, a == b && ca == cb);
    }

    /// What you write is what you read back, for arbitrary ranges that may
    /// cross frame boundaries.
    fn phys_memory_write_read_round_trip(
        start in 0u64..(4 * PAGE_SIZE),
        data in vec(any::<u8>(), 1..512),
    ) {
        let mut mem = PhysMemory::new(8 * PAGE_SIZE);
        let pa = PhysAddr::new(start);
        mem.write_bytes(pa, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(pa, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Writes to one range never disturb a disjoint range.
    fn phys_memory_writes_are_local(
        a_start in 0u64..PAGE_SIZE,
        a_data in vec(any::<u8>(), 1..128),
        b_off in 0u64..PAGE_SIZE,
        b_data in vec(any::<u8>(), 1..128),
    ) {
        let mut mem = PhysMemory::new(16 * PAGE_SIZE);
        let a = PhysAddr::new(a_start);
        // Place b in a region guaranteed disjoint from a.
        let b = PhysAddr::new(8 * PAGE_SIZE + b_off);
        mem.write_bytes(a, &a_data).unwrap();
        mem.write_bytes(b, &b_data).unwrap();
        let mut back = vec![0u8; a_data.len()];
        mem.read_bytes(a, &mut back).unwrap();
        prop_assert_eq!(back, a_data);
    }

    /// Translation preserves the page offset and respects permissions.
    fn page_table_translate_properties(
        page in 0u64..64,
        offset in 0u64..PAGE_SIZE,
        readable in any::<bool>(),
        writable in any::<bool>(),
    ) {
        let mut pt = PageTable::new();
        let mut perms = Perms::NONE;
        if readable { perms |= Perms::READ; }
        if writable { perms |= Perms::WRITE; }
        let mut alloc = FrameAllocator::with_range(1000, 4096);
        let frame = alloc.alloc().unwrap();
        pt.map(VirtPage::new(page), frame, perms).unwrap();

        let va = VirtAddr::new(page * PAGE_SIZE + offset);
        for (access, allowed) in [(Access::Read, readable), (Access::Write, writable)] {
            match pt.translate(va, access) {
                Ok(pa) => {
                    prop_assert!(allowed);
                    prop_assert_eq!(pa.page_offset(), offset);
                    prop_assert_eq!(pa.page(), frame);
                }
                Err(MemFault::Protection { .. }) => prop_assert!(!allowed),
                Err(other) => prop_assert!(false, "unexpected fault {other:?}"),
            }
        }
    }

    /// Evictions are exactly the fills that exceeded capacity: after
    /// touching `pages` distinct pages through a cold TLB of `cap`
    /// entries, `evictions == misses - len` and the TLB never overfills.
    fn tlb_evictions_account_for_capacity(
        cap in 1usize..8,
        pages in 1u64..32,
    ) {
        let mut pt = PageTable::new();
        let mut alloc = FrameAllocator::with_range(1, 4096);
        for p in 0..pages {
            pt.map(VirtPage::new(p), alloc.alloc().unwrap(), Perms::READ).unwrap();
        }
        let mut tlb = udma_mem::Tlb::new(cap);
        for p in 0..pages {
            tlb.translate(&pt, VirtPage::new(p).base(), Access::Read).unwrap();
        }
        let stats = tlb.stats();
        prop_assert_eq!(stats.misses, pages);
        prop_assert!(tlb.len() <= cap);
        prop_assert_eq!(stats.evictions, pages.saturating_sub(cap as u64));
        prop_assert_eq!(stats.evictions, stats.misses - tlb.len() as u64);
    }

    /// The frame allocator never hands out the same frame twice while it
    /// is live, and never exceeds its range.
    fn allocator_uniqueness(count in 1u64..128, take in 1usize..200) {
        let mut alloc = FrameAllocator::with_range(0, count);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..take {
            match alloc.alloc() {
                Some(f) => {
                    prop_assert!(f.number() < count);
                    prop_assert!(seen.insert(f), "frame {f} handed out twice");
                }
                None => {
                    prop_assert!(seen.len() as u64 == count);
                    break;
                }
            }
        }
    }
}

/// Regression pinned from the retired proptest suite's saved failure
/// (`props.proptest-regressions`): the boundary where `pa_raw` equals
/// `plain_limit` exactly, with the narrowest shadow bit.
#[test]
fn shadow_round_trip_regression_at_plain_limit() {
    let (shadow_bit, ctx_bits, pa_raw, ctx) = (20u32, 2u32, 262_144u64, 0u32);
    let layout = ShadowLayout::new(shadow_bit, shadow_bit - ctx_bits, ctx_bits);
    let pa = PhysAddr::new(pa_raw);
    assert!(pa_raw >= layout.plain_limit(), "the saved case sits on the plain-limit boundary");
    assert!(layout.shadow_paddr_ctx(pa, ctx.min(layout.num_contexts() - 1)).is_none());
}
