//! The key-guessing analysis (§3.1, experiment E10).
//!
//! "A lucky user may 'guess' a key and may start illegal DMA transfers.
//! We believe that this is highly unlikely: in 64-bit architectures,
//! there will be close to 60 bits available for the key field." This
//! module measures both halves of that claim: how often sequential
//! guessing is accepted at a given key width, and what a *correct* key
//! actually buys an attacker.

use udma::{emit_dma_once, BufferSpec, DmaMethod, DmaRequest, Machine, MachineConfig, ProcessSpec};
use udma_cpu::{FixedSchedule, ProgramBuilder, Reg};
use udma_nic::regs::encode_key_ctx;

/// Outcome of a guessing sweep.
#[derive(Clone, Copy, Debug)]
pub struct GuessStats {
    /// Key width in bits.
    pub key_bits: u32,
    /// Guesses issued.
    pub attempts: u64,
    /// Guesses the engine accepted (stored an address into the context).
    pub accepted: u64,
}

impl GuessStats {
    /// Observed acceptance rate.
    pub fn acceptance_rate(&self) -> f64 {
        self.accepted as f64 / self.attempts as f64
    }
}

/// Sweeps `attempts` sequential key guesses (`1, 2, 3, …`) against a
/// machine whose keys are `key_bits` wide, and reports how many the
/// engine accepted. With an exhaustive sweep of the key space the answer
/// is exactly one — the victim's key — so the acceptance rate is
/// `2^-key_bits` per guess, which at the paper's 61 bits makes guessing
/// "easier ... to guess the UNIX password".
///
/// The guesser is a context-less process: it owns shadow-mapped pages (so
/// its stores reach the engine) but was never granted a context or key.
pub fn guess_acceptance(key_bits: u32, attempts: u64, key_seed: u64) -> GuessStats {
    let mut m = Machine::new(MachineConfig {
        key_bits,
        key_seed,
        ..MachineConfig::new(DmaMethod::KeyBased)
    });
    // The victim holds context 0; its key is what the guesser hunts.
    let victim = m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build());
    let victim_ctx = m.env(victim).ctx.expect("victim granted").ctx;

    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(1)],
        want_ctx: Some(false),
        ..Default::default()
    };
    m.spawn(&spec, |env| {
        let base = env.shadow_of(env.buffer(0).va).as_u64();
        let mut b = ProgramBuilder::new();
        for guess in 1..=attempts {
            // Guess keys sequentially; context id is known (tiny space).
            // Vary the shadow address so the write buffer cannot collapse
            // successive guesses (footnote-6 hazard), and finish with a
            // barrier so every guess reaches the engine.
            let target = base + (guess * 8) % udma_mem::PAGE_SIZE;
            let payload = encode_key_ctx(guess & ((1 << 61) - 1), victim_ctx);
            b = b.store(target, payload);
        }
        b.mb().halt().build()
    });
    m.run(attempts * 8 + 10_000);
    let stats = m.engine().core().stats().clone();
    GuessStats { key_bits, attempts, accepted: attempts - stats.key_mismatches }
}

/// Demonstrates what one correct guess enables: the adversary, knowing
/// the victim's key, overwrites the victim's staged addresses between the
/// victim's argument stores and its trigger load, redirecting the
/// victim's transfer into the adversary's buffer. Returns `true` when the
/// redirection succeeded (it always does — that is the point of the
/// paper's "practically zero" probability argument: *given* the key, the
/// scheme has no second line of defence).
pub fn pollution_with_known_key() -> bool {
    let mut m = Machine::new(MachineConfig::new(DmaMethod::KeyBased));
    let victim = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    let grant = m.env(victim).ctx.expect("victim granted");

    // The adversary "guessed" the key; it owns two pages of its own.
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(1), BufferSpec::rw(1)],
        want_ctx: Some(false),
        ..Default::default()
    };
    let adversary = m.spawn(&spec, |env| {
        let payload = encode_key_ctx(grant.key, grant.ctx);
        let dst = env.shadow_of(env.buffer(0).va).as_u64();
        let src = env.shadow_of(env.buffer(1).va).as_u64();
        ProgramBuilder::new()
            .store(dst, payload) // restart the context's address pair…
            .store(src, payload) // …with the adversary's addresses
            .halt()
            .build()
    });

    // Victim: st, st, st(size), ld — preempt it right before the trigger
    // load and let the adversary pollute the context.
    let v = victim;
    let a = adversary;
    let schedule = vec![v, v, v, a, a, a, v, v];
    m.run_with(&mut FixedSchedule::new(schedule), 10_000);

    let adv_dst = m.env(adversary).buffer(0).first_frame;
    let hijacked = m.transfers().iter().any(|r| r.dst.page() == adv_dst);
    // And the victim believes its own DMA succeeded.
    hijacked && m.reg(victim, Reg::R0) != udma_nic::DMA_FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_sweep_of_a_tiny_keyspace_finds_exactly_the_key() {
        // 6-bit keys: sweeping all 63 nonzero values accepts exactly the
        // victim's key (possibly more than one store if the sequence
        // wraps, but we issue each value once).
        let stats = guess_acceptance(6, 63, 7);
        assert_eq!(stats.attempts, 63);
        assert_eq!(stats.accepted, 1);
        assert!((stats.acceptance_rate() - 1.0 / 63.0).abs() < 1e-9);
    }

    #[test]
    fn wide_keys_reject_everything_in_reach() {
        // 32-bit keys, a few thousand guesses: acceptance is zero for any
        // reasonable seed (probability ~ 2^-20 over the whole sweep).
        let stats = guess_acceptance(32, 4_000, 12345);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn acceptance_shrinks_with_key_width() {
        let narrow = guess_acceptance(4, 15, 3);
        let wide = guess_acceptance(10, 15, 3);
        assert!(narrow.accepted >= wide.accepted);
        assert_eq!(narrow.accepted, 1, "4-bit space is fully covered");
    }

    #[test]
    fn known_key_breaks_the_scheme() {
        assert!(pollution_with_known_key());
    }
}
