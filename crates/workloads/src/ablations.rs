//! Ablation studies for the design choices DESIGN.md calls out.

use crate::run_contention;
use udma::{DmaMethod, MachineConfig};
use udma_bus::{SimTime, WriteBufferPolicy};

/// One scheduler-quantum point.
#[derive(Clone, Copy, Debug)]
pub struct QuantumRow {
    /// Round-robin quantum in instructions.
    pub quantum: u64,
    /// Did every process finish within the step budget?
    pub finished: bool,
    /// Mean time per initiation (meaningless when not finished).
    pub mean_per_init: SimTime,
    /// Context switches taken.
    pub context_switches: u64,
}

/// Sweeps the scheduler quantum for `processes` × `inits` concurrent
/// initiations.
///
/// This probes a liveness property the paper leaves implicit: the
/// repeated-passing protocol shares **one** FSM among all processes, so
/// if the quantum is shorter than the 5-access sequence, competing
/// processes can break each other's sequences forever (livelock). Context
/// switches on 1997 Unix happened every ~10 ms ≈ thousands of
/// instructions, so the paper never hit this — but it bounds how far the
/// scheme can be pushed. The key-based/extended-shadow schemes have
/// per-process state and survive any quantum.
pub fn quantum_ablation(
    method: DmaMethod,
    quanta: &[u64],
    processes: u32,
    inits: u32,
) -> Vec<QuantumRow> {
    quanta
        .iter()
        .map(|&quantum| {
            let r = run_contention(method, processes, inits, quantum);
            QuantumRow {
                quantum,
                finished: r.finished,
                mean_per_init: r.mean_per_init(),
                context_switches: r.context_switches,
            }
        })
        .collect()
}

/// One write-buffer-policy point.
#[derive(Clone, Copy, Debug)]
pub struct WbPolicyRow {
    /// Human-readable policy name.
    pub name: &'static str,
    /// Mean initiation cost under the policy.
    pub mean: SimTime,
}

/// Measures one method's initiation cost under different write-buffer
/// policies. Correctness never depends on the buffer (the protocols are
/// barriered per the paper); cost moves a little because a pass-through
/// buffer retires stores immediately.
pub fn write_buffer_ablation(method: DmaMethod, iters: u32) -> Vec<WbPolicyRow> {
    let policies: [(&'static str, WriteBufferPolicy); 3] = [
        ("alpha-like (collapse+forward, 4 entries)", WriteBufferPolicy::default()),
        ("no collapsing", WriteBufferPolicy { collapse_stores: false, ..Default::default() }),
        ("disabled (pass-through)", WriteBufferPolicy::disabled()),
    ];
    policies
        .into_iter()
        .map(|(name, wb_policy)| WbPolicyRow {
            name,
            mean: udma::measure_initiation_with(
                MachineConfig { wb_policy, ..MachineConfig::new(method) },
                iters,
            )
            .mean,
        })
        .collect()
}

/// One context-count point.
#[derive(Clone, Copy, Debug)]
pub struct CtxCountRow {
    /// Register contexts synthesised into the engine.
    pub contexts: u32,
    /// Processes that got one.
    pub user_level: u32,
    /// Processes that fell back to the kernel.
    pub fallback: u32,
    /// Mean per-initiation cost across everyone.
    pub mean_per_init: SimTime,
}

/// How many register contexts does the engine need? The paper says
/// "several (say 4 to 8)"; this sweep shows the cost cliff when
/// concurrent initiators outnumber contexts (§3.2 fallback).
/// The standard A3 context-count grid: 1, 2, then even counts up to the
/// NI register map's [`udma_nic::regs::MAX_CONTEXTS`]. Derived (not
/// hard-coded) from the same shared constant the OS context cache and
/// the E17 sweep clamp against, so the ablation and the
/// virtualization experiments cannot drift apart if the register map
/// grows.
pub fn a3_context_grid() -> Vec<u32> {
    [1u32, 2].into_iter().chain((4..=udma_nic::regs::MAX_CONTEXTS).step_by(2)).collect()
}

/// A3: initiation cost vs context count under contention.
pub fn context_count_ablation(processes: u32, inits: u32, counts: &[u32]) -> Vec<CtxCountRow> {
    counts
        .iter()
        .map(|&contexts| {
            let mut m = udma::Machine::new(MachineConfig {
                num_contexts: contexts,
                ..MachineConfig::new(DmaMethod::KeyBased)
            });
            for _ in 0..processes {
                m.spawn(&udma::ProcessSpec::two_buffers_of(4), |env| {
                    let mut b = udma_cpu::ProgramBuilder::new();
                    let mut uniq = 0;
                    for i in 0..inits as u64 {
                        let off = (i * 128) % (udma_mem::PAGE_SIZE - 128);
                        let req =
                            udma::DmaRequest::new(env.addr_in(0, off), env.addr_in(1, off), 8);
                        b = udma::emit_dma(env, b, &req, &mut uniq);
                    }
                    b.halt().build()
                });
            }
            let user_level = (0..processes)
                .filter(|&i| m.env(udma_cpu::Pid::new(i)).can_use_user_level())
                .count() as u32;
            let out = m.run_with(
                &mut udma_cpu::RoundRobin::new(200),
                processes as u64 * inits as u64 * 400 + 100_000,
            );
            assert!(out.finished);
            let total = processes as u64 * inits as u64;
            CtxCountRow {
                contexts,
                user_level,
                fallback: processes - user_level,
                mean_per_init: SimTime::from_ps(m.time().as_ps() / total),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_quantum_livelocks_repeated_passing_but_not_key_based() {
        let rep = quantum_ablation(DmaMethod::Repeated5, &[2, 300], 2, 5);
        assert!(!rep[0].finished, "quantum 2 should livelock the shared-FSM protocol");
        assert!(rep[1].finished, "a quantum ≫ sequence length recovers");

        let key = quantum_ablation(DmaMethod::KeyBased, &[2, 300], 2, 5);
        assert!(key[0].finished, "per-process contexts survive any quantum");
        assert!(key[1].finished);
    }

    #[test]
    fn write_buffer_policy_changes_cost_not_correctness() {
        let rows = write_buffer_ablation(DmaMethod::Repeated5, 100);
        assert_eq!(rows.len(), 3);
        // All policies complete (measure_initiation_with asserts every
        // initiation started); costs stay within a small band.
        let min = rows.iter().map(|r| r.mean.as_ns()).fold(f64::MAX, f64::min);
        let max = rows.iter().map(|r| r.mean.as_ns()).fold(0.0, f64::max);
        assert!(max / min < 1.3, "policies diverge: {min} vs {max}");
    }

    #[test]
    fn more_contexts_remove_the_fallback_cliff() {
        let rows = context_count_ablation(6, 5, &[2, 6]);
        assert_eq!(rows[0].fallback, 4);
        assert_eq!(rows[1].fallback, 0);
        assert!(rows[1].mean_per_init < rows[0].mean_per_init);
    }
}
