//! Context-virtualization workload (E17).
//!
//! [`context_pressure_sweep`] drives 100 → 100k **logical processes**
//! onto the NI's 4–8 register contexts through the OS context cache and
//! reports what multiplexing costs: initiation p50/p99, context-steal
//! rate, hit rate, and the NI-side spill/fill/steal/starvation counters.
//! Process picks follow a hot-set distribution (most posts come from a
//! small working set, the tail is uniform), so the cache sees the
//! locality real multiprogramming has.
//!
//! [`hostile_tenant_scenario`] is the QoS experiment: well-paced
//! guaranteed-tier tenants share the NI with a best-effort tenant
//! burst-stealing as fast as it can. With the arbiter enabled the
//! victims' p99 initiation must stay within 2× of its uncontended value
//! (the E17 acceptance bound); disabled, the hostile tenant evicts the
//! victims between every one of their posts.

use udma::{DmaMethod, LogicalPost, Machine, MachineConfig, PostPath};
use udma_bus::SimTime;
use udma_mem::PhysAddr;
use udma_nic::regs::MAX_CONTEXTS;
use udma_nic::CtxStats;
use udma_os::{ArbiterConfig, CtxCacheConfig, CtxCacheStats, CtxVictimPolicy, QosClass};

/// Transfer size every E17 post moves (one cache-line-ish burst, well
/// inside the single-page rule).
const POST_BYTES: u64 = 256;
/// Source/destination pages the posts stream between.
const SRC_PA: u64 = 0x2000;
const DST_PA: u64 = 0x6000;

/// The standard E17 context grid: the paper's "say 4 to 8" (§3.1),
/// upper-bounded by the NI register map's [`MAX_CONTEXTS`] — the same
/// shared definition the A3 ablation grid derives from, so the two
/// sweeps cannot drift apart.
pub fn e17_context_grid() -> Vec<u32> {
    (4..=MAX_CONTEXTS).step_by(2).collect()
}

/// One (process-count, context-count) point of the E17 sweep.
#[derive(Clone, Copy, Debug)]
pub struct CtxPressureRow {
    /// Logical processes registered.
    pub processes: u32,
    /// Hardware register contexts.
    pub contexts: u32,
    /// Victim policy in force.
    pub policy: CtxVictimPolicy,
    /// Posts issued.
    pub posts: u32,
    /// Median initiation cost.
    pub p50_initiation: SimTime,
    /// 99th-percentile initiation cost (the multiplexing tail).
    pub p99_initiation: SimTime,
    /// Fraction of posts that found their context resident.
    pub hit_rate: f64,
    /// Context steals per post.
    pub steal_rate: f64,
    /// Posts that fell back to the kernel DMA path.
    pub kernel_fallbacks: u32,
    /// NI-side context-virtualization counters.
    pub ni: CtxStats,
    /// OS-side cache counters.
    pub os: CtxCacheStats,
}

/// Experiment E17: for every process count, registers that many logical
/// processes on a `contexts`-context NI, issues `posts` DMA posts drawn
/// from a hot-set picker (90% from the hottest `min(12, n)` processes,
/// 10% uniform), and measures the initiation-cost distribution and
/// steal traffic. Deterministic per `seed`.
pub fn context_pressure_sweep(
    process_counts: &[u32],
    contexts: u32,
    posts: u32,
    policy: CtxVictimPolicy,
    seed: u64,
) -> Vec<CtxPressureRow> {
    process_counts
        .iter()
        .map(|&n| context_pressure_point(n, contexts, posts, policy, seed))
        .collect()
}

fn context_pressure_point(
    processes: u32,
    contexts: u32,
    posts: u32,
    policy: CtxVictimPolicy,
    seed: u64,
) -> CtxPressureRow {
    let mut m = machine(contexts);
    m.enable_ctx_virtualization(CtxCacheConfig {
        victim: policy,
        seed,
        ..CtxCacheConfig::default()
    });
    let lps: Vec<_> = (0..processes).map(|_| m.register_logical(QosClass::BestEffort)).collect();

    // A fixed hot set slightly larger than the biggest context file:
    // growing the file 4 → 8 then covers more of the hot set, which is
    // exactly the effect E17 charts (hit rate ↑, median flips from the
    // kernel-ish steal cost to the user-level post).
    let hot = processes.min(12);
    let mut rng = seed ^ 0xE17;
    let mut now = SimTime::ZERO;
    let mut costs = Vec::with_capacity(posts as usize);
    let mut fallbacks = 0u32;
    for _ in 0..posts {
        // Hot-set locality: 90% of posts from the first `hot`
        // processes, the rest uniform over everyone.
        let r = splitmix(&mut rng);
        let p = if r % 10 < 9 {
            lps[(splitmix(&mut rng) % hot as u64) as usize]
        } else {
            lps[(splitmix(&mut rng) % processes as u64) as usize]
        };
        let post =
            m.logical_post_at(p, PhysAddr::new(SRC_PA), PhysAddr::new(DST_PA), POST_BYTES, now);
        if matches!(post.path, PostPath::KernelFallback { .. }) {
            fallbacks += 1;
        }
        costs.push(post.initiation);
        // Pace posts a few microseconds apart: a 256-byte transfer
        // holds its context busy for ~13 µs on the ATM link, so at
        // this rate a couple of contexts are always mid-transfer —
        // enough overlap for busy-victim skips and starvation to show
        // at scale without collapsing every post into the fallback.
        now += SimTime::from_us(5);
    }

    costs.sort_unstable();
    let ni = m.engine().core().ctx_stats();
    let os = m.ctx_cache().expect("enabled").stats();
    CtxPressureRow {
        processes,
        contexts,
        policy,
        posts,
        p50_initiation: percentile(&costs, 50.0),
        p99_initiation: percentile(&costs, 99.0),
        hit_rate: os.hits as f64 / (os.hits + os.misses).max(1) as f64,
        steal_rate: ni.steals as f64 / posts.max(1) as f64,
        kernel_fallbacks: fallbacks,
        ni,
        os,
    }
}

/// Outcome of the hostile-tenant QoS scenario.
#[derive(Clone, Copy, Debug)]
pub struct HostileTenantRow {
    /// Whether the arbiter (token buckets + QoS tiers) was enabled.
    pub qos_enabled: bool,
    /// Victim-tier p50 with the hostile tenant active.
    pub victim_p50: SimTime,
    /// Victim-tier p99 with the hostile tenant active.
    pub victim_p99: SimTime,
    /// Victim-tier p99 with no hostile tenant (same pacing, same
    /// machine shape) — the uncontended baseline.
    pub uncontended_p99: SimTime,
    /// `victim_p99 / uncontended_p99` — the E17 acceptance bound says
    /// this stays ≤ 2 with QoS on.
    pub degradation: f64,
    /// Victim posts that fell back to the kernel DMA path.
    pub victim_fallbacks: u32,
    /// Hostile steals refused by the token bucket.
    pub hostile_throttled: u64,
    /// Hostile posts that fell back to the kernel DMA path.
    pub hostile_fallbacks: u32,
}

/// The E17 QoS scenario. `victims` guaranteed-tier tenants post one
/// paced DMA each per 25 µs round; a swarm of best-effort tenant
/// identities (4 × `contexts`, so every hostile post is a miss) posts
/// `hostile_per_round` times per round, as fast as the cache lets it.
/// Measured over `rounds` rounds after a one-round warmup; the
/// uncontended baseline runs the identical victim schedule with the
/// hostile swarm absent.
pub fn hostile_tenant_scenario(
    contexts: u32,
    victims: u32,
    hostile_per_round: u32,
    rounds: u32,
    qos_enabled: bool,
    seed: u64,
) -> HostileTenantRow {
    assert!(victims < contexts, "victims must fit the context file");
    let baseline = hostile_run(contexts, victims, 0, rounds, qos_enabled, seed);
    let contended = hostile_run(contexts, victims, hostile_per_round, rounds, qos_enabled, seed);
    let uncontended_p99 = percentile(&baseline.victim_costs, 99.0);
    let victim_p99 = percentile(&contended.victim_costs, 99.0);
    HostileTenantRow {
        qos_enabled,
        victim_p50: percentile(&contended.victim_costs, 50.0),
        victim_p99,
        uncontended_p99,
        degradation: victim_p99.as_ps() as f64 / uncontended_p99.as_ps().max(1) as f64,
        victim_fallbacks: contended.victim_fallbacks,
        hostile_throttled: contended.hostile_throttled,
        hostile_fallbacks: contended.hostile_fallbacks,
    }
}

struct HostileRun {
    victim_costs: Vec<SimTime>,
    victim_fallbacks: u32,
    hostile_throttled: u64,
    hostile_fallbacks: u32,
}

fn hostile_run(
    contexts: u32,
    victims: u32,
    hostile_per_round: u32,
    rounds: u32,
    qos_enabled: bool,
    seed: u64,
) -> HostileRun {
    let mut m = machine(contexts);
    // QoS on: the operator provisions the guaranteed tier — one
    // reserved context per admitted guaranteed tenant.
    let arbiter = if qos_enabled {
        ArbiterConfig { reserved: victims, ..ArbiterConfig::default() }
    } else {
        ArbiterConfig::disabled()
    };
    m.enable_ctx_virtualization(CtxCacheConfig { seed, arbiter, ..CtxCacheConfig::default() });
    let victim_lps: Vec<_> =
        (0..victims).map(|_| m.register_logical(QosClass::Guaranteed)).collect();
    // Enough hostile identities that every hostile post misses: the
    // swarm cycles through 4 × contexts best-effort processes.
    let hostiles: Vec<_> =
        (0..contexts * 4).map(|_| m.register_logical(QosClass::BestEffort)).collect();

    let mut rng = seed ^ 0x40577u64.wrapping_mul(hostile_per_round as u64 + 1);
    let mut now = SimTime::ZERO;
    let mut victim_costs = Vec::new();
    let mut victim_fallbacks = 0u32;
    let mut hostile_fallbacks = 0u32;
    let mut hostile_idx = 0usize;
    let round_gap = SimTime::from_us(25);
    for round in 0..rounds + 1 {
        let measured = round > 0; // round 0 is warmup (first fills)
                                  // The hostile burst front-runs the victims inside each round —
                                  // worst case for the victims' residency.
        for _ in 0..hostile_per_round {
            let h = hostiles[hostile_idx % hostiles.len()];
            hostile_idx += 1;
            let post = post_one(&mut m, h, now);
            if measured && matches!(post.path, PostPath::KernelFallback { .. }) {
                hostile_fallbacks += 1;
            }
            now += SimTime::from_ns(200);
        }
        for &v in &victim_lps {
            let post = post_one(&mut m, v, now);
            if measured {
                victim_costs.push(post.initiation);
                if matches!(post.path, PostPath::KernelFallback { .. }) {
                    victim_fallbacks += 1;
                }
            }
            now += SimTime::from_ns(500 + splitmix(&mut rng) % 100);
        }
        now += round_gap;
    }
    HostileRun {
        victim_costs,
        victim_fallbacks,
        hostile_throttled: m.ctx_cache().expect("enabled").arbiter_stats().throttled,
        hostile_fallbacks,
    }
}

fn post_one(m: &mut Machine, p: udma_os::LPid, now: SimTime) -> LogicalPost {
    m.logical_post_at(p, PhysAddr::new(SRC_PA), PhysAddr::new(DST_PA), POST_BYTES, now)
}

fn machine(contexts: u32) -> Machine {
    let mut config = MachineConfig::new(DmaMethod::KeyBased);
    config.num_contexts = contexts;
    Machine::new(config)
}

/// Nearest-rank percentile over a sample (sorted internally).
fn percentile(sample: &[SimTime], pct: f64) -> SimTime {
    if sample.is_empty() {
        return SimTime::ZERO;
    }
    let mut v = sample.to_vec();
    v.sort_unstable();
    let rank = ((pct / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
    v[rank.min(v.len()) - 1]
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_sweep_degrades_gracefully() {
        let rows = context_pressure_sweep(&[4, 100, 2_000], 4, 400, CtxVictimPolicy::Lru, 7);
        // With processes ≤ contexts everything is a hit after warmup.
        assert!(rows[0].hit_rate > 0.95, "hit rate {}", rows[0].hit_rate);
        assert_eq!(rows[0].ni.steals, 0);
        // Pressure brings steals, and the tail stretches.
        assert!(rows[2].steal_rate > 0.0);
        assert!(rows[2].p99_initiation >= rows[0].p99_initiation);
        // Counters reconcile: every steal spilled, every fill matched a
        // miss that got a context.
        for r in &rows {
            assert_eq!(r.ni.spills, r.os.spills);
            assert_eq!(r.ni.fills, r.os.fills);
            assert!(r.ni.steals <= r.ni.spills);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = context_pressure_sweep(&[500], 4, 300, CtxVictimPolicy::Clock, 11);
        let b = context_pressure_sweep(&[500], 4, 300, CtxVictimPolicy::Clock, 11);
        assert_eq!(a[0].p99_initiation, b[0].p99_initiation);
        assert_eq!(a[0].ni, b[0].ni);
    }

    #[test]
    fn qos_protects_the_victims() {
        let on = hostile_tenant_scenario(4, 2, 32, 40, true, 3);
        assert!(
            on.degradation <= 2.0,
            "QoS on: victim p99 {} vs uncontended {} ({}×)",
            on.victim_p99,
            on.uncontended_p99,
            on.degradation
        );
        assert_eq!(on.victim_fallbacks, 0, "guaranteed tier never kicked to the kernel");

        let off = hostile_tenant_scenario(4, 2, 32, 40, false, 3);
        assert!(
            off.degradation > on.degradation,
            "unprotected victims must fare worse: {} vs {}",
            off.degradation,
            on.degradation
        );
    }

    #[test]
    fn e17_grid_tracks_max_contexts() {
        let grid = e17_context_grid();
        assert_eq!(grid.first(), Some(&4));
        assert_eq!(grid.last(), Some(&MAX_CONTEXTS));
    }
}
