//! Node-fault workload (E19): crash-rate × reboot-time ×
//! detection-timeout sweep over the sharded cluster.
//!
//! A ring workload (every node streaming announced transfers to seeded
//! peers) runs while scripted [`CrashPlan`]s take nodes down and bring
//! them back under new incarnation epochs. Each sweep point runs once
//! on the sequential oracle and once per shard count on the parallel
//! runner, differencing every [`udma::ClusterDigest`] against the
//! oracle's — so, exactly like E16, the sweep *is* a determinism check
//! under active crash plans, not just a benchmark.
//!
//! The zero-crash row carries one more pin: a cluster built by this
//! module with no plan injected must produce a digest bit-identical to
//! the same workload built with no fault machinery configured at all —
//! the fault domain costs nothing until the first [`CrashPlan`] arms
//! it.

use udma::{ClusterConfig, ClusterSim};
use udma_bus::sim::RunnerKind;
use udma_bus::SimTime;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{CrashPlan, XferState};

/// The one ASID the workload's buffers live in on every node.
pub const CRASH_ASID: u32 = 2;

/// Destination-buffer base VA on every node.
const DST_BASE: u64 = 32 * PAGE_SIZE;

/// Shape of one E19 sweep point.
#[derive(Clone, Copy, Debug)]
pub struct CrashWorkload {
    /// Cluster size.
    pub nodes: u32,
    /// Transfers each node posts.
    pub xfers_per_node: u32,
    /// Pages per transfer.
    pub pages_per_xfer: u64,
    /// Crash-and-reboot plans injected (distinct seeded victims).
    pub crashes: u32,
    /// Downtime of each victim before its reboot.
    pub reboot_after: SimTime,
    /// ACK-lease the failure detector runs on.
    pub lease: SimTime,
    /// Seed decorrelating victims, crash times and the ring pattern.
    pub seed: u64,
}

impl CrashWorkload {
    /// The default shape at a given cluster size and crash plan.
    pub fn standard(nodes: u32, crashes: u32, reboot_us: u64, lease_us: u64, seed: u64) -> Self {
        CrashWorkload {
            nodes,
            xfers_per_node: 2,
            pages_per_xfer: 2,
            crashes,
            reboot_after: SimTime::from_us(reboot_us),
            lease: SimTime::from_us(lease_us),
            seed,
        }
    }

    /// Total transfers the workload posts.
    pub fn total_xfers(&self) -> u32 {
        self.nodes * self.xfers_per_node
    }

    /// The seeded crash plans of this point: `crashes` victims dying
    /// across the workload's launch window, each rebooting after
    /// `reboot_after`. Pure arithmetic on the seed — every backend
    /// injects the identical schedule (overlapping victims are legal;
    /// the recovery path guards re-entry).
    pub fn plans(&self) -> Vec<CrashPlan> {
        (0..self.crashes)
            .map(|i| {
                let mixed = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(i).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                let victim = ((mixed >> 7) ^ (mixed >> 43)) % u64::from(self.nodes);
                let at = SimTime::from_us(25 + (mixed >> 32) % 400);
                CrashPlan::crash(victim as u32, at, self.reboot_after)
            })
            .collect()
    }
}

/// Builds the workload on a given backend: announced ring transfers
/// into pre-granted pinned slots, then the seeded crash plans (if any).
/// With `crashes == 0` nothing is injected and the fault domain never
/// arms.
pub fn build_crash_cluster(w: &CrashWorkload, shards: usize, runner: RunnerKind) -> ClusterSim {
    assert!(w.nodes >= 2, "the ring workload needs at least two nodes");
    let mut cfg = ClusterConfig::new(w.nodes);
    cfg.shards = shards;
    cfg.runner = runner;
    cfg.pin_on_post = true;
    cfg.announce = true;
    cfg.health.lease = w.lease;
    let mut sim = ClusterSim::new(cfg);
    for node in 0..w.nodes {
        for slot in 0..w.xfers_per_node {
            let va = VirtAddr::new(DST_BASE + u64::from(slot) * w.pages_per_xfer * PAGE_SIZE);
            sim.grant(node, CRASH_ASID, va, w.pages_per_xfer, Perms::READ_WRITE)
                .expect("disjoint slots");
        }
    }
    for src in 0..w.nodes {
        for slot in 0..w.xfers_per_node {
            let hop = 1
                + (u64::from(src).wrapping_mul(w.seed | 1) + u64::from(slot))
                    % u64::from(w.nodes - 1);
            let dst = (src + hop as u32) % w.nodes;
            let va = VirtAddr::new(DST_BASE + u64::from(slot) * w.pages_per_xfer * PAGE_SIZE);
            // Stagger launches across the crash window so failures hit
            // transfers in every phase: unposted, streaming, draining.
            let at = SimTime::from_us(u64::from(src % 9) * 13 + u64::from(slot) * 37);
            sim.post(src, dst, CRASH_ASID, va, w.pages_per_xfer * PAGE_SIZE, at);
        }
    }
    for plan in w.plans() {
        sim.inject_crash(plan);
    }
    sim
}

/// One `(crashes, reboot, lease)` point of the E19 sweep.
#[derive(Clone, Debug)]
pub struct NodeFaultRow {
    /// Crash-and-reboot plans injected.
    pub crashes: u32,
    /// Victim downtime before reboot (µs).
    pub reboot_us: u64,
    /// Detector ACK-lease (µs).
    pub lease_us: u64,
    /// Transfers posted.
    pub posted: u32,
    /// Transfers that reached [`XferState::Complete`].
    pub completed: u32,
    /// Transfers that failed fast or aborted with `DMA_NODE_DOWN`.
    pub node_down: u32,
    /// `completed / posted` — the availability the workload saw.
    pub availability: f64,
    /// Delivered (acked in-order) bytes over the makespan, in Mb/s.
    pub goodput_mbps: f64,
    /// Median sender-observed outage (Down entry → first post-recovery
    /// progress). Zero when no outage was ever observed.
    pub recovery_p50: SimTime,
    /// Tail sender-observed outage.
    pub recovery_p99: SimTime,
    /// Stale-incarnation frames fenced cluster-wide.
    pub fenced: u64,
    /// Grant-ledger records replayed by reboots cluster-wide.
    pub regrants: u64,
    /// Whether every parallel shard count replayed the oracle digest.
    pub matches_oracle: bool,
}

/// Experiment E19: for each `(crash count, reboot time, lease)` point,
/// runs the workload on the sequential oracle and then on the parallel
/// runner at each shard count, differencing every digest against the
/// oracle's, and reports goodput, availability and recovery latency.
///
/// # Panics
///
/// Panics if any backend's digest diverges from the oracle, or if the
/// zero-crash point differs from a fault-blind build of the same
/// workload — robustness numbers from a nondeterministic (or quietly
/// taxed) simulator are worthless.
pub fn node_fault_sweep(
    nodes: u32,
    crash_counts: &[u32],
    reboot_us: &[u64],
    lease_us: &[u64],
    shard_counts: &[usize],
    seed: u64,
) -> Vec<NodeFaultRow> {
    let mut rows = Vec::new();
    for &crashes in crash_counts {
        for &reboot in reboot_us {
            for &lease in lease_us {
                let w = CrashWorkload::standard(nodes, crashes, reboot, lease, seed);
                let mut oracle = build_crash_cluster(&w, 1, RunnerKind::Sequential);
                oracle.run();
                let expect = oracle.digest();
                if crashes == 0 {
                    // The zero-delta pin: no plan, no trace of the
                    // fault domain — not one event, stat or timestamp.
                    let mut blind = build_crash_cluster(
                        &CrashWorkload { lease: SimTime::from_us(1), ..w },
                        1,
                        RunnerKind::Sequential,
                    );
                    blind.run();
                    if let Some(diff) = expect.diff(&blind.digest()) {
                        panic!(
                            "E19 zero-crash run is sensitive to fault-domain config \
                             (seed {seed:#x}):\n{diff}"
                        );
                    }
                }
                for &shards in shard_counts {
                    let mut sim = build_crash_cluster(&w, shards, RunnerKind::Parallel);
                    sim.run();
                    if let Some(diff) = expect.diff(&sim.digest()) {
                        panic!(
                            "E19 point (crashes={crashes}, reboot={reboot}µs, lease={lease}µs, \
                             seed {seed:#x}) diverged at {shards} shards:\n{diff}"
                        );
                    }
                }
                // A divergence panics above, so a returned row is by
                // construction oracle-checked.
                rows.push(row_from(&w, &oracle, true));
            }
        }
    }
    rows
}

fn row_from(w: &CrashWorkload, sim: &ClusterSim, matches_oracle: bool) -> NodeFaultRow {
    let d = sim.digest();
    let completed = d.xfers.iter().filter(|x| x.state == XferState::Complete).count() as u32;
    let node_down = d.xfers.iter().filter(|x| x.state == XferState::NodeDown).count() as u32;
    let moved: u64 = d.xfers.iter().map(|x| x.counters.moved).sum();
    let makespan = d.xfers.iter().filter_map(|x| x.finished).max().unwrap_or(SimTime::ZERO);
    let goodput_mbps = if makespan > SimTime::ZERO {
        (moved as f64 * 8.0) / makespan.as_us() // bits per µs == Mb/s
    } else {
        0.0
    };
    let outages = sim.recovery_samples();
    NodeFaultRow {
        crashes: w.crashes,
        reboot_us: w.reboot_after.as_us() as u64,
        lease_us: w.lease.as_us() as u64,
        posted: d.xfers.len() as u32,
        completed,
        node_down,
        availability: if d.xfers.is_empty() {
            1.0
        } else {
            f64::from(completed) / d.xfers.len() as f64
        },
        goodput_mbps,
        recovery_p50: percentile(&outages, 50.0),
        recovery_p99: percentile(&outages, 99.0),
        fenced: d.nodes.iter().map(|n| n.crash.fenced).sum(),
        regrants: d.nodes.iter().map(|n| n.crash.regrants).sum(),
        matches_oracle,
    }
}

fn percentile(sample: &[SimTime], pct: f64) -> SimTime {
    if sample.is_empty() {
        return SimTime::ZERO;
    }
    let mut v = sample.to_vec();
    v.sort_unstable();
    let rank = ((pct / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
    v[rank.min(v.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_free_point_is_fully_available() {
        let rows = node_fault_sweep(8, &[0], &[200], &[150], &[2], 0xE19);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.matches_oracle);
        assert_eq!(r.completed, r.posted, "no crash, no loss: {r:?}");
        assert_eq!((r.node_down, r.fenced, r.regrants), (0, 0, 0), "{r:?}");
        assert!((r.availability - 1.0).abs() < f64::EPSILON);
        assert!(r.goodput_mbps > 0.0);
    }

    #[test]
    fn crashes_cost_availability_but_never_determinism() {
        let rows = node_fault_sweep(8, &[0, 2], &[300], &[200], &[2, 4], 0xE19);
        let (clean, churn) = (&rows[0], &rows[1]);
        assert!(churn.matches_oracle);
        assert!(churn.regrants > 0, "a reboot must replay the ledger: {churn:?}");
        assert!(
            churn.completed < clean.completed || churn.node_down > 0,
            "two crashes should visibly dent the workload: {churn:?}"
        );
        assert_eq!(
            churn.completed + churn.node_down,
            churn.posted,
            "every transfer settles Complete or NodeDown under pinned slots: {churn:?}"
        );
    }
}
