//! Multi-process contention workloads.

use udma::{emit_dma, DmaMethod, DmaRequest, Machine, MachineConfig, ProcessSpec};
use udma_bus::SimTime;
use udma_cpu::{ProgramBuilder, RoundRobin};
use udma_mem::PAGE_SIZE;

/// Outcome of a contention run.
#[derive(Clone, Copy, Debug)]
pub struct ContentionResult {
    /// Processes spawned.
    pub processes: u32,
    /// Initiations issued per process.
    pub inits_per_process: u32,
    /// Processes that got a register context (user-level path).
    pub user_level_processes: u32,
    /// Processes that fell back to the kernel path (§3.2: "the rest will
    /// have to go through the kernel").
    pub kernel_fallback_processes: u32,
    /// Total simulated time.
    pub total_time: SimTime,
    /// Transfers the engine actually performed.
    pub transfers: u64,
    /// Context switches taken.
    pub context_switches: u64,
    /// Kernel DMA syscalls served (fallback traffic).
    pub kernel_dmas: u64,
    /// Whether every process completed within the step budget (a
    /// repeated-passing run under a tiny quantum can livelock — see the
    /// quantum ablation bench).
    pub finished: bool,
}

impl ContentionResult {
    /// Mean time per initiation across all processes.
    pub fn mean_per_init(&self) -> SimTime {
        let total = self.processes as u64 * self.inits_per_process as u64;
        SimTime::from_ps(self.total_time.as_ps() / total.max(1))
    }
}

/// Runs `processes` processes, each issuing `inits` back-to-back
/// initiations of its own buffers, under round-robin preemption every
/// `quantum` instructions.
///
/// Register contexts are limited (4 by default), so with more than four
/// processes the key-based and extended-shadow methods exercise the
/// paper's kernel-fallback path for the overflow processes.
pub fn run_contention(
    method: DmaMethod,
    processes: u32,
    inits: u32,
    quantum: u64,
) -> ContentionResult {
    let mut m = Machine::new(MachineConfig::new(method));
    for _ in 0..processes {
        let mut spec = ProcessSpec::two_buffers_of(4);
        if method == DmaMethod::Shrimp1 {
            spec.mapped_out.push((0, 1));
        }
        m.spawn(&spec, |env| {
            let mut b = ProgramBuilder::new();
            let mut uniq = 0;
            for i in 0..inits as u64 {
                let page = i % 4;
                let off = (i * 128) % (PAGE_SIZE - 128);
                let req = DmaRequest::new(
                    env.addr_in(0, page * PAGE_SIZE + off),
                    env.addr_in(1, page * PAGE_SIZE + off),
                    8,
                );
                b = emit_dma(env, b, &req, &mut uniq);
            }
            b.halt().build()
        });
    }
    let user_level = (0..processes)
        .filter(|&i| m.env(udma_cpu::Pid::new(i)).can_use_user_level())
        .count() as u32;

    let budget = processes as u64 * inits as u64 * 400 + 100_000;
    let out = m.run_with(&mut RoundRobin::new(quantum), budget);
    let transfers = m.engine().core().stats().started;

    ContentionResult {
        processes,
        inits_per_process: inits,
        user_level_processes: user_level,
        kernel_fallback_processes: processes - user_level,
        total_time: m.time(),
        transfers,
        context_switches: m.executor().stats().context_switches,
        kernel_dmas: m.kernel().stats().dma_syscalls,
        finished: out.finished,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_based_contention_all_user_level_when_contexts_suffice() {
        let r = run_contention(DmaMethod::KeyBased, 3, 5, 200);
        assert!(r.finished);
        assert_eq!(r.user_level_processes, 3);
        assert_eq!(r.kernel_fallback_processes, 0);
        assert_eq!(r.transfers, 15);
        assert_eq!(r.kernel_dmas, 0);
        assert!(r.context_switches > 0);
    }

    #[test]
    fn context_exhaustion_routes_overflow_through_kernel() {
        // 6 processes, 4 contexts → 2 fall back to the kernel.
        let r = run_contention(DmaMethod::ExtShadow, 6, 3, 500);
        assert!(r.finished);
        assert_eq!(r.user_level_processes, 4);
        assert_eq!(r.kernel_fallback_processes, 2);
        assert_eq!(r.transfers, 18);
        assert_eq!(r.kernel_dmas, 2 * 3);
    }

    #[test]
    fn repeated_passing_survives_moderate_preemption() {
        // Quantum much larger than the 10-instruction retry body: every
        // process makes progress despite the shared FSM.
        let r = run_contention(DmaMethod::Repeated5, 3, 4, 150);
        assert!(r.finished);
        assert_eq!(r.transfers, 12);
    }

    #[test]
    fn kernel_method_under_contention() {
        let r = run_contention(DmaMethod::Kernel, 2, 3, 100);
        assert!(r.finished);
        assert_eq!(r.transfers, 6);
        assert_eq!(r.kernel_dmas, 6);
        assert!(r.mean_per_init().as_us() > 10.0);
    }
}
