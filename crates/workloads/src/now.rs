//! Network-of-workstations workloads: fan-out over the cluster.

use udma::{BufferSpec, DmaMethod, Machine, MachineConfig, ProcessSpec};
use udma_bus::SimTime;
use udma_cpu::{ProgramBuilder, Reg};
use udma_mem::{PhysAddr, PAGE_SIZE};
use udma_nic::Destination;

/// Result of a broadcast run.
#[derive(Clone, Copy, Debug)]
pub struct BroadcastResult {
    /// Remote nodes addressed.
    pub nodes: u32,
    /// Bytes sent to each node.
    pub bytes_per_node: u64,
    /// Time until the *initiations* were all issued (CPU-side cost).
    pub initiation_time: SimTime,
    /// Time until the last byte arrived on the last node (wire-bound).
    pub completion_time: SimTime,
    /// Whether every node received the correct payload.
    pub verified: bool,
}

/// Broadcasts one page-resident message to `nodes` remote workstations
/// with SHRIMP-1 mapped-out pages — one store + one status load per node
/// from user level.
///
/// The interesting shape: the *initiation* side scales with a couple of
/// bus transactions per node, while completion is serialised on the
/// single outgoing link (this model has one NIC, as the paper's
/// workstation does).
///
/// # Panics
///
/// Panics if the run does not complete.
pub fn broadcast(nodes: u32, bytes: u64) -> BroadcastResult {
    assert!(bytes <= PAGE_SIZE, "one page per mapped-out transfer");
    let mut m = Machine::new(MachineConfig {
        remote_nodes: nodes,
        ..MachineConfig::new(DmaMethod::Shrimp1)
    });
    // One source page per node (mapped-out destinations are per-frame).
    let spec = ProcessSpec { buffers: vec![BufferSpec::rw(nodes as u64)], ..Default::default() };
    let pid = m.spawn(&spec, |env| {
        let mut b = ProgramBuilder::new();
        for n in 0..nodes as u64 {
            let s = env.shadow_of(env.addr_in(0, n * PAGE_SIZE));
            b = b.store(s.as_u64(), bytes).load(Reg::R0, s.as_u64());
        }
        b.halt().build()
    });
    // Mapped-out table: page n → node n at remote address 0.
    {
        let env = m.env(pid).clone();
        let engine = m.engine().clone();
        let mut core = engine.core_mut();
        for n in 0..nodes as u64 {
            core.set_mapped_out(
                env.buffer(0).first_frame.offset(n),
                Destination::Remote { node: n as u32, addr: PhysAddr::new(0) },
            );
        }
    }
    // Distinct payload per node.
    for n in 0..nodes as u64 {
        let frame = m.env(pid).buffer(0).first_frame.offset(n);
        let data: Vec<u8> = (0..bytes).map(|i| (i as u8).wrapping_add(n as u8)).collect();
        m.memory().borrow_mut().write_bytes(frame.base(), &data).unwrap();
    }

    let out = m.run(1_000_000);
    assert!(out.finished, "broadcast did not complete");
    let initiation_time = m.time();
    let completion_time = m.transfers().iter().map(|r| r.finished).max().unwrap_or(initiation_time);

    let cluster = m.cluster().expect("remote nodes configured");
    let verified = (0..nodes as u64).all(|n| {
        let mut buf = vec![0u8; bytes as usize];
        cluster.borrow().read(n as u32, PhysAddr::new(0), &mut buf).is_ok()
            && buf.iter().enumerate().all(|(i, &b)| b == (i as u8).wrapping_add(n as u8))
    });

    BroadcastResult {
        nodes,
        bytes_per_node: bytes,
        initiation_time,
        completion_time: SimTime::from_ps(completion_time.as_ps().max(initiation_time.as_ps())),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_every_node_correctly() {
        let r = broadcast(4, 1024);
        assert!(r.verified);
        assert_eq!(r.nodes, 4);
    }

    #[test]
    fn initiation_scales_linearly_but_stays_cheap() {
        let r2 = broadcast(2, 512);
        let r6 = broadcast(6, 512);
        let per_node_2 = r2.initiation_time.as_ns() / 2.0;
        let per_node_6 = r6.initiation_time.as_ns() / 6.0;
        // Per-node initiation cost is flat (≈ one SHRIMP-1 store+load).
        assert!((per_node_2 / per_node_6 - 1.0).abs() < 0.3);
        // And each initiation is on the order of a microsecond, not a
        // syscall.
        assert!(per_node_6 < 2_000.0, "{per_node_6} ns per node");
    }

    #[test]
    fn completion_is_wire_bound() {
        let r = broadcast(3, 4096);
        assert!(r.completion_time >= r.initiation_time);
        // The last transfer cannot finish before its serialisation time.
        let wire = udma_nic::LinkModel::atm155().transfer_time(4096);
        assert!(r.completion_time >= wire);
    }
}
