//! Lossy-link reliability workload (E14).
//!
//! [`lossy_link_sweep`] drives a stream of remote virtual-address
//! transfers over a seeded chaos link for every (loss-rate, retry-budget)
//! pair and reports what the go-back-N layer salvages: goodput, tail
//! (p99) completion latency, retransmit volume, link-layer aborts and
//! circuit-breaker trips. The sweep is fully deterministic — the fault
//! plan's PRNG seed is derived from the grid point, so every run of the
//! same grid reproduces the same packet story.

use udma::{DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_bus::SimTime;
use udma_cpu::ProgramBuilder;
use udma_iommu::IotlbConfig;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{FaultPlan, RejectReason, ReliabilityConfig, RetryPolicy, VirtState};

/// Address space and base VA the remote node exposes for E14.
const REMOTE_ASID: u32 = 14;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;

/// One (loss-rate, retry-budget) point of the E14 sweep.
#[derive(Clone, Copy, Debug)]
pub struct LossyLinkRow {
    /// Per-frame drop probability, in percent.
    pub loss_pct: u32,
    /// Link-level retransmit rounds allowed before the transfer aborts.
    pub retry_budget: u32,
    /// Transfers posted.
    pub transfers: u32,
    /// Transfers that completed (all bytes delivered, bit-exact).
    pub completed: u32,
    /// Transfers aborted `DMA_LINK_FAILED` (retry budget exhausted).
    pub link_failed: u32,
    /// Times the circuit breaker tripped (and was repaired) mid-stream.
    pub breaker_trips: u32,
    /// Data frames retransmitted across the whole stream.
    pub retransmits: u64,
    /// Bytes that actually arrived (completions plus in-order prefixes).
    pub delivered_bytes: u64,
    /// `delivered_bytes` over the summed modeled transfer time, in
    /// MB/s — the paper-style goodput figure chaos erodes.
    pub goodput_mb_s: f64,
    /// Mean completion latency of the transfers that completed.
    pub mean_completion: SimTime,
    /// 99th-percentile completion latency of the completed transfers —
    /// the tail the retransmit/backoff machinery creates.
    pub p99_completion: SimTime,
}

/// Experiment E14: for every (loss %, retry budget) pair, streams
/// `transfers` sequential `pages`-page transfers into a remote node over
/// a chaos link dropping that fraction of data frames (ACKs share the
/// same fate), with the go-back-N retransmit budget set to the pair's
/// budget. Pin-on-post on both sides, so the link layer is the only
/// source of disturbance. Goodput falls and the p99 tail stretches as
/// loss rises; a larger budget converts aborts into (slower)
/// completions, trading tail latency for delivery.
pub fn lossy_link_sweep(
    loss_pcts: &[u32],
    retry_budgets: &[u32],
    pages: u64,
    transfers: u32,
) -> Vec<LossyLinkRow> {
    let mut rows = Vec::new();
    for &loss in loss_pcts {
        for &budget in retry_budgets {
            // One seed per grid point: deterministic, yet decorrelated
            // across points.
            let seed = 0xE14_0000 + (loss as u64) * 101 + budget as u64;
            let plan = FaultPlan::lossless(seed).with_drop(loss.min(99) as f64 / 100.0);
            let rel = ReliabilityConfig {
                retry: RetryPolicy::new(budget, SimTime::from_us(5)),
                ..ReliabilityConfig::default()
            };
            let mut m = Machine::new(MachineConfig {
                virt_dma: Some(VirtDmaSetup::pin_on_post(IotlbConfig::default())),
                remote_nodes: 1,
                link_chaos: Some(plan),
                reliability: rel,
                ..MachineConfig::new(DmaMethod::Kernel)
            });
            let pid = m.spawn(&ProcessSpec::two_buffers_of(pages), |_| {
                ProgramBuilder::new().halt().build()
            });
            m.grant_remote_buffer(
                0,
                REMOTE_ASID,
                VirtAddr::new(REMOTE_VA),
                pages,
                Perms::READ_WRITE,
            );
            let src = m.env(pid).buffer(0).va;

            let mut row = LossyLinkRow {
                loss_pct: loss,
                retry_budget: budget,
                transfers,
                completed: 0,
                link_failed: 0,
                breaker_trips: 0,
                retransmits: 0,
                delivered_bytes: 0,
                goodput_mb_s: 0.0,
                mean_completion: SimTime::ZERO,
                p99_completion: SimTime::ZERO,
            };
            let mut completions: Vec<SimTime> = Vec::new();
            let mut total_time = SimTime::ZERO;
            for _ in 0..transfers {
                let id = match m.post_virt_remote(
                    pid,
                    src,
                    0,
                    REMOTE_ASID,
                    VirtAddr::new(REMOTE_VA),
                    pages * PAGE_SIZE,
                ) {
                    Ok(id) => id,
                    Err(RejectReason::LinkDown) => {
                        // The breaker tripped: repair and repost, as an
                        // operator (or a failover layer) would.
                        row.breaker_trips += 1;
                        m.link_repair();
                        m.post_virt_remote(
                            pid,
                            src,
                            0,
                            REMOTE_ASID,
                            VirtAddr::new(REMOTE_VA),
                            pages * PAGE_SIZE,
                        )
                        .expect("repost after repair")
                    }
                    Err(other) => panic!("unexpected reject: {other}"),
                };
                let state = m.run_virt(id, (8 * pages + 32) as u32);
                let t = m.virt_xfer(id).expect("transfer exists");
                row.delivered_bytes += t.moved;
                row.retransmits += u64::from(t.retransmits);
                let duration = t.finished.expect("terminal state").saturating_sub(t.started);
                total_time += duration;
                match state {
                    VirtState::Complete => {
                        row.completed += 1;
                        completions.push(duration);
                    }
                    VirtState::LinkFailed => row.link_failed += 1,
                    other => panic!("non-terminal end state {other:?}"),
                }
            }
            if total_time > SimTime::ZERO {
                row.goodput_mb_s =
                    row.delivered_bytes as f64 / (total_time.as_us() / 1e6) / (1024.0 * 1024.0);
            }
            if !completions.is_empty() {
                row.mean_completion = SimTime::from_ps(
                    (completions.iter().map(|c| c.as_ps() as u128).sum::<u128>()
                        / completions.len() as u128) as u64,
                );
                completions.sort_unstable();
                let idx = (completions.len() * 99).div_ceil(100).max(1) - 1;
                row.p99_completion = completions[idx];
            }
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_point_is_perfect_and_free() {
        let rows = lossy_link_sweep(&[0], &[4], 2, 6);
        let r = &rows[0];
        assert_eq!(r.completed, 6);
        assert_eq!(r.link_failed, 0);
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.breaker_trips, 0);
        assert_eq!(r.delivered_bytes, 6 * 2 * PAGE_SIZE);
        // With zero loss the tail is only the first transfer's cold
        // IOTLB walks away from the mean — well under a microsecond.
        assert!(r.p99_completion >= r.mean_completion);
        assert!((r.p99_completion - r.mean_completion) < SimTime::from_us(5));
    }

    #[test]
    fn loss_erodes_goodput_and_stretches_the_tail() {
        let rows = lossy_link_sweep(&[0, 30], &[6], 2, 8);
        let (clean, lossy) = (&rows[0], &rows[1]);
        assert!(lossy.retransmits > 0, "30% loss must force retransmits");
        assert!(
            lossy.goodput_mb_s < clean.goodput_mb_s,
            "goodput {} not below clean {}",
            lossy.goodput_mb_s,
            clean.goodput_mb_s
        );
        assert!(lossy.p99_completion > clean.p99_completion, "tail must stretch under loss");
    }

    #[test]
    fn larger_retry_budget_trades_aborts_for_completions() {
        let rows = lossy_link_sweep(&[35], &[1, 8], 2, 8);
        let (tight, roomy) = (&rows[0], &rows[1]);
        assert!(
            roomy.completed >= tight.completed,
            "budget 8 completed {} < budget 1's {}",
            roomy.completed,
            tight.completed
        );
        assert!(roomy.delivered_bytes >= tight.delivered_bytes);
        // The stream stays fully accounted either way.
        assert_eq!(tight.completed + tight.link_failed, 8);
        assert_eq!(roomy.completed + roomy.link_failed, 8);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = lossy_link_sweep(&[25], &[3], 1, 5);
        let b = lossy_link_sweep(&[25], &[3], 1, 5);
        assert_eq!(a[0].retransmits, b[0].retransmits);
        assert_eq!(a[0].completed, b[0].completed);
        assert_eq!(a[0].p99_completion, b[0].p99_completion);
    }
}
