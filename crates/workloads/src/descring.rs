//! Doorbell-batched descriptor rings (E20).
//!
//! [`ring_initiation_sweep`] measures per-transfer DMA initiation cost
//! as a function of **queue depth** — how many descriptors the user
//! posts into the per-context ring before ringing the doorbell once.
//! At depth 1 the cost pins exactly to the key-based per-post baseline
//! (the ring hardware is free until it is used); as depth grows the
//! single doorbell store and the register-sequence protection checks
//! amortize across the batch and the per-transfer cost falls toward
//! the asymptote of four cached descriptor stores plus one engine-side
//! fetch. The E20 acceptance bound requires the curve to be monotone
//! non-increasing and ≥ 2× cheaper at depth 16 than at depth 1.

use udma::{measure_initiation, measure_ring_initiation, DmaMethod};
use udma_bus::SimTime;

/// The standard E20 queue-depth grid: 1 (the pin point) through 32,
/// doubling — deep enough that the curve visibly flattens against the
/// store-plus-fetch asymptote.
pub fn e20_depth_grid() -> Vec<u32> {
    vec![1, 2, 4, 8, 16, 32]
}

/// One queue-depth point of the E20 sweep.
#[derive(Clone, Copy, Debug)]
pub struct RingInitiationRow {
    /// Descriptors posted per doorbell.
    pub depth: u32,
    /// Total transfers averaged over.
    pub transfers: u32,
    /// Mean per-transfer initiation cost at this depth.
    pub mean_initiation: SimTime,
    /// The key-based register-sequence per-post cost (depth-independent
    /// baseline every row is measured against).
    pub per_post_baseline: SimTime,
    /// `per_post_baseline / mean_initiation` — the amortization factor.
    pub speedup: f64,
}

/// Experiment E20: for every queue depth, drives `transfers` DMA posts
/// through the per-context descriptor ring in doorbell batches of
/// `depth` and reports the mean per-transfer initiation cost, next to
/// the per-post register-sequence baseline. `transfers` must be a
/// positive multiple of every depth in the grid.
pub fn ring_initiation_sweep(depths: &[u32], transfers: u32) -> Vec<RingInitiationRow> {
    let baseline = measure_initiation(DmaMethod::KeyBased, transfers).mean;
    depths
        .iter()
        .map(|&depth| {
            let mean = measure_ring_initiation(depth, transfers).mean;
            RingInitiationRow {
                depth,
                transfers,
                mean_initiation: mean,
                per_post_baseline: baseline,
                speedup: baseline.as_ps() as f64 / mean.as_ps().max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        let a = ring_initiation_sweep(&[1, 8], 16);
        let b = ring_initiation_sweep(&[1, 8], 16);
        assert_eq!(a[0].mean_initiation, b[0].mean_initiation);
        assert_eq!(a[1].mean_initiation, b[1].mean_initiation);
        assert_eq!(a[1].speedup, b[1].speedup);
    }

    #[test]
    fn depth_one_is_the_pin_point() {
        let rows = ring_initiation_sweep(&[1], 8);
        assert_eq!(rows[0].mean_initiation, rows[0].per_post_baseline);
        assert_eq!(rows[0].speedup, 1.0);
    }

    #[test]
    fn grid_starts_at_the_pin_and_doubles_past_sixteen() {
        let grid = e20_depth_grid();
        assert_eq!(grid.first(), Some(&1));
        assert!(grid.contains(&16), "the acceptance bound is stated at depth 16");
        assert!(grid.windows(2).all(|w| w[1] == 2 * w[0]));
    }
}
