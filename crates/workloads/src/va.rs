//! Virtual-address DMA workloads (E11, E12, E13, E15).
//!
//! The base reproduction's schemes all pass physical (shadow) addresses.
//! The virtual-address extension puts an IOMMU in the NI; these drivers
//! characterise its cost centres:
//!
//! * [`iotlb_sweep`] (E11) — IOTLB hit ratio as a function of capacity
//!   against a fixed working set, on pre-pinned (never-faulting)
//!   transfers;
//! * [`fault_rate_sweep`] (E12) — end-to-end transfer cost as a function
//!   of how many of its pages must be demand-faulted in by the OS
//!   mid-transfer;
//! * [`remote_fault_sweep`] (E13) — the *cross-link* fault path: cost of
//!   a transfer into a remote node's virtual memory as a function of the
//!   remote-fault rate and the link model, isolating the NACK round-trip
//!   term that scales with wire latency;
//! * [`pipeline_sweep`] / [`remote_pipeline_sweep`] (E15) — the
//!   translation pipeline: prefetch depth × IOTLB capacity × chunk
//!   coalescing, locally (blocking walks hidden behind batched prewalks)
//!   and across the link (one NACK round trip for a cold range instead
//!   of one per page).

use udma::{DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_bus::SimTime;
use udma_cpu::ProgramBuilder;
use udma_iommu::IotlbConfig;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{LinkModel, PrefetchConfig, VirtState};

/// One IOTLB-capacity point of the E11 sweep.
#[derive(Clone, Copy, Debug)]
pub struct IotlbSweepRow {
    /// IOTLB entries.
    pub entries: usize,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses (each one paid a page-table walk).
    pub misses: u64,
    /// Capacity/conflict evictions.
    pub evictions: u64,
    /// `hits / (hits + misses)`.
    pub hit_ratio: f64,
}

/// A machine with virtual-address DMA configured and one process holding
/// two `pages`-page buffers; returns the machine, its pid's buffer VAs.
fn va_machine(setup: VirtDmaSetup, pages: u64) -> (Machine, udma_cpu::Pid, VirtAddr, VirtAddr) {
    let config = MachineConfig { virt_dma: Some(setup), ..MachineConfig::new(DmaMethod::Kernel) };
    let mut m = Machine::new(config);
    let pid =
        m.spawn(&ProcessSpec::two_buffers_of(pages), |_| ProgramBuilder::new().halt().build());
    let src = m.env(pid).buffer(0).va;
    let dst = m.env(pid).buffer(1).va;
    (m, pid, src, dst)
}

/// Experiment E11: sweeps IOTLB capacity (fully associative, so the
/// curve isolates *capacity*, not conflicts) against a working set of
/// `working_set_pages` source/destination page pairs, streamed `passes`
/// times with pre-pinned pages so no fault noise enters. Hit ratio rises
/// with capacity and saturates once the IOTLB holds the whole set
/// (`2 × working_set_pages` translations).
pub fn iotlb_sweep(entries: &[usize], working_set_pages: u64, passes: u32) -> Vec<IotlbSweepRow> {
    entries
        .iter()
        .map(|&n| {
            let setup = VirtDmaSetup::pin_on_post(IotlbConfig::fully_associative(n));
            let (mut m, pid, src, dst) = va_machine(setup, working_set_pages);
            for _ in 0..passes {
                for p in 0..working_set_pages {
                    let id = m
                        .post_virt(pid, src + p * PAGE_SIZE, dst + p * PAGE_SIZE, PAGE_SIZE)
                        .expect("pinned pages cannot be rejected");
                    assert_eq!(m.run_virt(id, 8), VirtState::Complete);
                }
            }
            let stats = m.engine().core().iommu().expect("VA machine has an IOMMU").stats();
            IotlbSweepRow {
                entries: n,
                hits: stats.tlb.hits,
                misses: stats.tlb.misses,
                evictions: stats.tlb.evictions,
                hit_ratio: stats.tlb.hit_ratio(),
            }
        })
        .collect()
}

/// One fault-fraction point of the E12 sweep.
#[derive(Clone, Copy, Debug)]
pub struct FaultRateRow {
    /// Percentage of the transfer's page pairs resident in the I/O page
    /// table *before* the measured transfer was posted.
    pub prefaulted_pct: u32,
    /// I/O page faults the measured transfer raised.
    pub faults: u64,
    /// Engine-side overhead (walks, fault pauses, retry backoff) — the
    /// part that vanishes when every page is already mapped.
    pub stall: SimTime,
    /// Total modeled duration, post to completion.
    pub completion: SimTime,
}

/// Experiment E12: posts one `pages`-page transfer per row on a
/// demand-paging machine, with the first `prefaulted_pct` percent of its
/// page pairs already faulted in by a warm-up pass. The remaining pages
/// fault mid-transfer and are mapped-and-pinned by the OS fault service,
/// so both `faults` and `stall` fall as the prefaulted fraction rises —
/// and the per-fault cost (service + retry backoff) dwarfs the per-hit
/// cost (an IOTLB lookup).
pub fn fault_rate_sweep(prefaulted_pcts: &[u32], pages: u64) -> Vec<FaultRateRow> {
    prefaulted_pcts
        .iter()
        .map(|&pct| {
            let (mut m, pid, src, dst) = va_machine(VirtDmaSetup::default(), pages);
            // Warm-up: a minimal transfer per prefaulted page pair makes
            // the OS map-and-pin it, exactly as a prior transfer would.
            let warm = pages * u64::from(pct.min(100)) / 100;
            for p in 0..warm {
                let id = m
                    .post_virt(pid, src + p * PAGE_SIZE, dst + p * PAGE_SIZE, 8)
                    .expect("warm-up post");
                assert_eq!(m.run_virt(id, 16), VirtState::Complete);
            }
            let faults_before = m.engine().core().virt_stats().faults;
            let id = m.post_virt(pid, src, dst, pages * PAGE_SIZE).expect("measured post");
            let rounds = (4 * pages + 16) as u32;
            assert_eq!(m.run_virt(id, rounds), VirtState::Complete);
            let t = m.virt_xfer(id).expect("transfer exists");
            let faults = m.engine().core().virt_stats().faults - faults_before;
            FaultRateRow {
                prefaulted_pct: pct,
                faults,
                stall: t.stall,
                completion: t.finished.expect("complete") - t.started,
            }
        })
        .collect()
}

/// One (link, remote-fault-rate) point of the E13 sweep.
#[derive(Clone, Copy, Debug)]
pub struct RemoteFaultRow {
    /// Link preset name.
    pub link: &'static str,
    /// One-way wire latency of that link.
    pub link_latency: SimTime,
    /// Percentage of the destination's page pairs resident in the
    /// *node's* I/O page table before the measured transfer.
    pub prefaulted_pct: u32,
    /// Receive-side faults the measured transfer raised (each one
    /// crossed the link as a NACK).
    pub remote_faults: u64,
    /// Time lost to NACK round trips alone (2 × wire latency each).
    pub nack_stall: SimTime,
    /// Total engine-side overhead (walks, NACKs, service waits,
    /// backoff).
    pub stall: SimTime,
    /// Total modeled duration, post to completion.
    pub completion: SimTime,
}

/// Address space and base VA the remote node exposes for E13.
const REMOTE_ASID: u32 = 7;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;

/// Experiment E13: posts one `pages`-page transfer into a remote node's
/// virtual memory for every (link, prefaulted-fraction) pair. The
/// destination pages *not* warmed up fault on the node's receive-side
/// IOMMU, NACK back over the link (2 × wire latency each), get serviced
/// by the node's OS, and complete on the sender's retry — so `nack_stall`
/// grows with both the fault rate and the link's latency, which is
/// exactly the cross-link term the local E12 sweep cannot see.
pub fn remote_fault_sweep(
    links: &[LinkModel],
    prefaulted_pcts: &[u32],
    pages: u64,
) -> Vec<RemoteFaultRow> {
    let mut rows = Vec::new();
    for &link in links {
        for &pct in prefaulted_pcts {
            let config = MachineConfig {
                virt_dma: Some(VirtDmaSetup::default()),
                remote_nodes: 1,
                link,
                ..MachineConfig::new(DmaMethod::Kernel)
            };
            let mut m = Machine::new(config);
            let pid = m.spawn(&ProcessSpec::two_buffers_of(pages), |_| {
                ProgramBuilder::new().halt().build()
            });
            let src = m.env(pid).buffer(0).va;
            let dst = m
                .grant_remote_buffer(
                    0,
                    REMOTE_ASID,
                    VirtAddr::new(REMOTE_VA),
                    pages,
                    Perms::READ_WRITE,
                )
                .va;
            // Warm-up: a minimal transfer per prefaulted page makes the
            // node's OS map-and-pin it, as a prior transfer would. The
            // local source pages are warmed for *every* page so only the
            // receive side faults during the measured run.
            for p in 0..pages {
                let id = m
                    .post_virt(pid, src + p * PAGE_SIZE, src + p * PAGE_SIZE, 8)
                    .expect("local warm-up post");
                assert_eq!(m.run_virt(id, 16), VirtState::Complete);
            }
            let warm = pages * u64::from(pct.min(100)) / 100;
            for p in 0..warm {
                let id = m
                    .post_virt_remote(
                        pid,
                        src + p * PAGE_SIZE,
                        0,
                        REMOTE_ASID,
                        dst + p * PAGE_SIZE,
                        8,
                    )
                    .expect("remote warm-up post");
                assert_eq!(m.run_virt(id, 16), VirtState::Complete);
            }
            let before = m.engine().core().virt_stats().remote_faults;
            let id = m
                .post_virt_remote(pid, src, 0, REMOTE_ASID, dst, pages * PAGE_SIZE)
                .expect("measured post");
            let rounds = (4 * pages + 16) as u32;
            assert_eq!(m.run_virt(id, rounds), VirtState::Complete);
            let t = m.virt_xfer(id).expect("transfer exists");
            rows.push(RemoteFaultRow {
                link: link.name(),
                link_latency: link.latency(),
                prefaulted_pct: pct,
                remote_faults: m.engine().core().virt_stats().remote_faults - before,
                nack_stall: t.nack_stall,
                stall: t.stall,
                completion: t.finished.expect("complete") - t.started,
            });
        }
    }
    rows
}

/// One (variant, depth, capacity, coalescing) point of the E15 sweep.
#[derive(Clone, Copy, Debug)]
pub struct PipelineRow {
    /// `"local"` or `"remote"`.
    pub variant: &'static str,
    /// Prefetch depth in pages (0 = demand translation only).
    pub depth: u64,
    /// IOTLB entries (sender *and*, for the remote variant, node side).
    pub entries: usize,
    /// Maximum pages coalesced into one chunk (1 = no coalescing).
    pub max_coalesce: u64,
    /// Sender-IOTLB misses during the measured transfer — each one a
    /// *blocking* full-latency walk on the demand path.
    pub misses: u64,
    /// IOTLB entries installed by prewalk (amortized batch rate).
    pub prefetch_fills: u64,
    /// Demand lookups that hit a prewalked entry — misses the pipeline
    /// hid.
    pub prefetch_hidden: u64,
    /// Mover chunks issued (coalescing shrinks this).
    pub chunks: u64,
    /// Receive-side NACKs that crossed the link (remote variant only).
    pub nacks: u64,
    /// Engine-side overhead: walks, fault pauses, NACK round trips.
    pub stall: SimTime,
    /// Total modeled duration, post to completion.
    pub completion: SimTime,
}

/// Experiment E15 (local): one `pages`-page transfer per (depth,
/// capacity, coalescing) combination on a pin-on-post machine with a
/// cold, fully-associative IOTLB of `n` entries. Every page is
/// registered, so the only translation cost is IOTLB misses: the demand
/// path (`depth == 0`) pays a blocking full-latency walk per miss, while
/// prewalk batches of `depth` pages pay one full walk plus the pipelined
/// rate per extra walk — and coalescing merges physically-contiguous
/// pages into fewer, larger chunks.
pub fn pipeline_sweep(
    depths: &[u64],
    entries: &[usize],
    coalesce: &[u64],
    pages: u64,
) -> Vec<PipelineRow> {
    let mut rows = Vec::new();
    for &n in entries {
        for &d in depths {
            for &mc in coalesce {
                let mut setup = VirtDmaSetup::pin_on_post(IotlbConfig::fully_associative(n));
                setup.virt.prefetch = PrefetchConfig::pipelined(d, mc);
                let (mut m, pid, src, dst) = va_machine(setup, pages);
                let id = m.post_virt(pid, src, dst, pages * PAGE_SIZE).expect("measured post");
                assert_eq!(m.run_virt(id, (4 * pages + 16) as u32), VirtState::Complete);
                let t = m.virt_xfer(id).expect("transfer exists");
                let stats = m.engine().core().iommu().expect("VA machine has an IOMMU").stats();
                rows.push(PipelineRow {
                    variant: "local",
                    depth: d,
                    entries: n,
                    max_coalesce: mc,
                    misses: stats.tlb.misses,
                    prefetch_fills: stats.prefetch_fills,
                    prefetch_hidden: stats.prefetch_hidden,
                    chunks: m.engine().core().virt_stats().chunks,
                    nacks: 0,
                    stall: t.stall,
                    completion: t.finished.expect("complete") - t.started,
                });
            }
        }
    }
    rows
}

/// Experiment E15 (remote): one `pages`-page transfer into a *cold*
/// remote buffer per (depth, capacity, coalescing) combination. The
/// local source is fully warmed first, so every fault is receive-side.
/// On the demand path (`depth == 0`) each cold page NACKs back over the
/// link; with prefetch enabled the sender announces the destination
/// range at post time and the node's OS services the whole range on the
/// first NACK — so the cold-range cost collapses to exactly one round
/// trip.
pub fn remote_pipeline_sweep(
    depths: &[u64],
    entries: &[usize],
    coalesce: &[u64],
    pages: u64,
) -> Vec<PipelineRow> {
    let mut rows = Vec::new();
    for &n in entries {
        for &d in depths {
            for &mc in coalesce {
                let mut setup = VirtDmaSetup::demand(IotlbConfig::fully_associative(n));
                setup.virt.prefetch = PrefetchConfig::pipelined(d, mc);
                let config = MachineConfig {
                    virt_dma: Some(setup),
                    remote_nodes: 1,
                    ..MachineConfig::new(DmaMethod::Kernel)
                };
                let mut m = Machine::new(config);
                let pid = m.spawn(&ProcessSpec::two_buffers_of(pages), |_| {
                    ProgramBuilder::new().halt().build()
                });
                let src = m.env(pid).buffer(0).va;
                let dst = m
                    .grant_remote_buffer(
                        0,
                        REMOTE_ASID,
                        VirtAddr::new(REMOTE_VA),
                        pages,
                        Perms::READ_WRITE,
                    )
                    .va;
                for p in 0..pages {
                    let id = m
                        .post_virt(pid, src + p * PAGE_SIZE, src + p * PAGE_SIZE, 8)
                        .expect("local warm-up post");
                    assert_eq!(m.run_virt(id, 16), VirtState::Complete);
                }
                let stats_before = m.engine().core().virt_stats();
                let id = m
                    .post_virt_remote(pid, src, 0, REMOTE_ASID, dst, pages * PAGE_SIZE)
                    .expect("measured post");
                assert_eq!(m.run_virt(id, (4 * pages + 16) as u32), VirtState::Complete);
                let t = m.virt_xfer(id).expect("transfer exists");
                let stats = m.engine().core().virt_stats();
                rows.push(PipelineRow {
                    variant: "remote",
                    depth: d,
                    entries: n,
                    max_coalesce: mc,
                    misses: 0,
                    prefetch_fills: 0,
                    prefetch_hidden: 0,
                    chunks: stats.chunks - stats_before.chunks,
                    nacks: stats.nacks - stats_before.nacks,
                    stall: t.stall,
                    completion: t.finished.expect("complete") - t.started,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_rises_with_iotlb_capacity_and_saturates() {
        // Working set: 8 pairs = 16 translations. Cyclic streaming over
        // a FIFO is a step function: thrash below capacity, saturate at
        // it.
        let rows = iotlb_sweep(&[4, 16, 32], 8, 4);
        assert_eq!(rows[0].hit_ratio, 0.0, "under-capacity IOTLB thrashes");
        assert!(rows[0].evictions > 0);
        for row in &rows[1..] {
            // The whole set fits: only the first pass misses.
            assert_eq!(row.misses, 16);
            assert_eq!(row.evictions, 0);
            assert!(row.hit_ratio >= 0.75 - 1e-12, "ratio {}", row.hit_ratio);
        }
    }

    #[test]
    fn faults_and_stall_fall_as_prefaulted_fraction_rises() {
        let rows = fault_rate_sweep(&[0, 50, 100], 8);
        assert_eq!(rows[0].faults, 16); // every page pair faults
        assert_eq!(rows[2].faults, 0); // fully warm: none
        assert!(rows[0].stall > rows[1].stall);
        assert!(rows[1].stall > rows[2].stall);
        assert!(rows[0].completion > rows[2].completion);
    }

    #[test]
    fn nack_cost_scales_with_fault_rate_and_link_latency() {
        let links = [LinkModel::gigabit(), LinkModel::ethernet10()];
        let rows = remote_fault_sweep(&links, &[0, 100], 4);
        // rows: [gigabit/0, gigabit/100, ethernet/0, ethernet/100]
        assert_eq!(rows[0].remote_faults, 4, "cold destination faults every page");
        assert_eq!(rows[1].remote_faults, 0, "warm destination never NACKs");
        assert_eq!(rows[1].nack_stall, SimTime::ZERO);
        // Per-NACK cost is exactly the round trip, so the slow link pays
        // 10× the fast one (50 µs vs 5 µs one-way).
        assert_eq!(rows[0].nack_stall, SimTime::from_us(4 * 2 * 5));
        assert_eq!(rows[2].nack_stall, SimTime::from_us(4 * 2 * 50));
        assert!(rows[2].completion > rows[3].completion);
    }

    #[test]
    fn prefetch_hides_walks_and_coalescing_shrinks_chunks() {
        // 8 pages, IOTLB big enough to hold the prewalk window.
        let rows = pipeline_sweep(&[0, 4], &[64], &[1, 4], 8);
        // rows: [d0/mc1, d0/mc4, d4/mc1, d4/mc4]
        let (demand, coalesced, prefetch, both) = (rows[0], rows[1], rows[2], rows[3]);
        assert!(prefetch.stall < demand.stall, "prefetch must cut translation stall");
        assert!(prefetch.prefetch_hidden > 0, "prewalked entries absorb demand lookups");
        assert_eq!(demand.prefetch_fills, 0);
        // The coalescer's lookahead only merges IOTLB-resident pages, so
        // on a cold IOTLB it needs the prefetcher in front of it.
        assert_eq!(coalesced.chunks, demand.chunks, "cold IOTLB gives lookahead nothing to merge");
        assert!(both.chunks < prefetch.chunks, "contiguous prewalked frames merge into one chunk");
        assert!(both.completion <= prefetch.completion);
        assert!(both.stall < demand.stall);
    }

    #[test]
    fn announced_cold_remote_range_costs_one_nack() {
        let rows = remote_pipeline_sweep(&[0, 4], &[64], &[1], 4);
        assert_eq!(rows[0].nacks, 4, "demand path NACKs once per cold page");
        assert_eq!(rows[1].nacks, 1, "announced range collapses to a single NACK");
        assert!(rows[1].stall < rows[0].stall);
        assert!(rows[1].completion < rows[0].completion);
    }

    #[test]
    fn fault_path_dwarfs_iotlb_hit_path() {
        let rows = fault_rate_sweep(&[0, 100], 4);
        // Per-page overhead with faulting vs fully-resident pages.
        let faulting = rows[0].stall.as_ns() / 4.0;
        let resident = rows[1].stall.as_ns().max(1.0);
        assert!(
            faulting > 10.0 * resident,
            "fault path {faulting} ns/page not ≫ hit path {resident} ns/page"
        );
    }
}
