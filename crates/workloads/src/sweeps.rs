//! Parameter sweeps for the evaluation.

use udma::{measure_atomic, measure_initiation_with, DmaMethod, MachineConfig};
use udma_bus::{BusTiming, SimTime};

/// One bus-frequency point of the E7 sweep.
#[derive(Clone, Copy, Debug)]
pub struct BusSweepRow {
    /// Bus clock in MHz.
    pub bus_mhz: u64,
    /// Mean initiation cost at that clock.
    pub mean: SimTime,
}

/// Experiment E7 (§3.4 last paragraph): "our implementation is
/// pessimistic … the TurboChannel bus that we used runs at 12.5 MHz,
/// while recent buses, like the PCI bus run at frequencies as high as
/// 66 MHz." Sweeps the initiation cost of `method` over bus clocks.
pub fn bus_sweep(method: DmaMethod, bus_mhz: &[u64], iters: u32) -> Vec<BusSweepRow> {
    bus_mhz
        .iter()
        .map(|&mhz| {
            let config = MachineConfig {
                bus_timing: BusTiming::scaled(mhz * 1_000_000),
                ..MachineConfig::new(method)
            };
            BusSweepRow { bus_mhz: mhz, mean: measure_initiation_with(config, iters).mean }
        })
        .collect()
}

/// Experiment E9 (§3.5): mean cost of one atomic operation per initiation
/// path — kernel syscall vs. key-based vs. extended-shadow user level.
pub fn atomic_comparison(iters: u32) -> Vec<(DmaMethod, SimTime)> {
    [DmaMethod::Kernel, DmaMethod::KeyBased, DmaMethod::ExtShadow]
        .into_iter()
        .map(|m| (m, measure_atomic(m, iters).mean))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_buses_cut_user_level_initiation() {
        let rows = bus_sweep(DmaMethod::ExtShadow, &[12, 33, 66], 50);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].mean > rows[1].mean);
        assert!(rows[1].mean > rows[2].mean);
        // At 66 MHz the two-access initiation is deeply sub-microsecond.
        assert!(rows[2].mean.as_us() < 0.5, "{}", rows[2].mean);
    }

    #[test]
    fn bus_speed_barely_moves_kernel_dma() {
        let rows = bus_sweep(DmaMethod::Kernel, &[12, 66], 20);
        let ratio = rows[0].mean.as_ns() / rows[1].mean.as_ns();
        // Kernel cost is syscall-dominated: < 15% change for a 5.3×
        // faster bus.
        assert!(ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn user_level_atomics_beat_the_kernel_path() {
        let rows = atomic_comparison(50);
        let kernel = rows[0].1;
        for (m, t) in &rows[1..] {
            assert!(
                t.as_ns() * 4.0 < kernel.as_ns(),
                "{m} atomic {t} not ≫ faster than kernel {kernel}"
            );
        }
    }
}
