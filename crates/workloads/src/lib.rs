//! Workload and scenario generators for the udma reproduction.
//!
//! Everything the evaluation binaries and integration tests share:
//!
//! * [`scenarios`] — victim/adversary machines for the race and attack
//!   experiments (E3–E6), with the safety predicates
//!   ([`illegal_transfer`], [`misinformation`]) the interleaving explorer
//!   checks;
//! * [`contention`] — many processes initiating concurrently under a
//!   preemptive scheduler, including the §3.2 context-exhaustion
//!   fallback;
//! * [`keyguess`] — the §3.1 key-guessing analysis (E10);
//! * [`ablations`] — quantum / write-buffer / context-count sweeps;
//! * [`microbench`] — lmbench-style syscall, context-switch and TLB-miss
//!   latencies of the simulated host;
//! * [`sweeps`] — parameter sweeps: bus frequency (E7), message-size
//!   crossover inputs (E8), atomic-operation comparison (E9);
//! * [`va`] — virtual-address DMA: IOTLB capacity sweep (E11),
//!   fault-rate sweep (E12), the remote-fault × link sweep (E13) and the
//!   translation-pipeline sweep (E15);
//! * [`lossy`] — reliable delivery over a lossy link: goodput and p99
//!   completion vs loss rate × retry budget (E14);
//! * [`ctxvirt`] — context virtualization (E17): initiation p50/p99 and
//!   steal rate as 100 → 100k logical processes share 4–8 register
//!   contexts, plus the hostile-tenant QoS scenario;
//! * [`descring`] — doorbell-batched descriptor rings (E20): per-transfer
//!   initiation cost vs queue depth, pinned to the per-post baseline at
//!   depth 1;
//! * [`sharded`] — the sharded-cluster scaling sweep (E16): the standard
//!   all-to-all ring workload on the sequential oracle vs the parallel
//!   runner at 1–8 shards, every row digest-checked against the oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod coherence;
pub mod contention;
pub mod crashes;
pub mod ctxvirt;
pub mod descring;
pub mod keyguess;
pub mod lossy;
pub mod microbench;
pub mod now;
pub mod scenarios;
pub mod sharded;
pub mod sweeps;
pub mod va;

pub use ablations::{
    a3_context_grid, context_count_ablation, quantum_ablation, write_buffer_ablation, CtxCountRow,
    QuantumRow, WbPolicyRow,
};
pub use coherence::{
    coherence_cost_sweep, false_sharing_adversary, mode_label, CoherenceCostRow, FalseSharingRow,
    ProducerPrep,
};
pub use contention::{run_contention, ContentionResult};
pub use crashes::{build_crash_cluster, node_fault_sweep, CrashWorkload, NodeFaultRow, CRASH_ASID};
pub use ctxvirt::{
    context_pressure_sweep, e17_context_grid, hostile_tenant_scenario, CtxPressureRow,
    HostileTenantRow,
};
pub use descring::{e20_depth_grid, ring_initiation_sweep, RingInitiationRow};
pub use keyguess::{guess_acceptance, pollution_with_known_key, GuessStats};
pub use lossy::{lossy_link_sweep, LossyLinkRow};
pub use microbench::{context_switch, dcache_effect, empty_syscall, tlb_miss};
pub use now::{broadcast, BroadcastResult};
pub use scenarios::{
    any_violation, data_theft, illegal_transfer, misinformation, AdversaryKind, AttackScenario,
    ADVERSARY, VICTIM,
};
pub use sharded::{
    build_cluster, shard_scale_sweep, ClusterWorkload, ShardScaleRow, WORKLOAD_ASID,
};
pub use sweeps::{atomic_comparison, bus_sweep, BusSweepRow};
pub use va::{
    fault_rate_sweep, iotlb_sweep, pipeline_sweep, remote_fault_sweep, remote_pipeline_sweep,
    FaultRateRow, IotlbSweepRow, PipelineRow, RemoteFaultRow,
};
