//! Coherence-cost workload (E18).
//!
//! The paper's testbed measured DMA on cold caches by construction
//! ("successive DMA operations were done to(from) different addresses,
//! so as to eliminate any caching effects", §3.4). E18 measures what
//! that methodology hid: the cost of keeping DMA and a data-carrying
//! cache consistent, under the three machine models
//! [`CoherenceMode`](udma::CoherenceMode) offers.
//!
//! [`coherence_cost_sweep`] drives the cross product of
//! {flat, non-coherent, coherent} × {cold, warm, dirty producer} ×
//! buffer size through [`Machine::post_dma_coherence_aware`] and
//! itemises where the time went. The headline shape it charts:
//!
//! * **non-coherent** pays a per-line software flush + invalidate on
//!   *every* post — cost scales with the buffer footprint even when the
//!   cache is cold, because software cannot know which lines are dirty
//!   without sweeping them;
//! * **coherent** pays per *touched* line — zero on cold/warm caches,
//!   one intervention per dirty line on a dirty producer;
//! * **flat** pays nothing, which is exactly the paper's (optimistic)
//!   Table-1 world.
//!
//! [`false_sharing_adversary`] is the pathological case: the CPU and
//! the DMA engine ping-pong ownership of *one* line (CPU owns bytes
//! 8..16, DMA owns bytes 0..8). Every round forces a
//! writeback-intervention before the DMA write and an invalidation
//! after it — and the byte merge must still come out exact, which is
//! precisely the ordering hazard DESIGN.md §4h documents.

use udma::{CoherenceMode, CoherenceSetup, DmaMethod, Machine, MachineConfig};
use udma_bus::SimTime;
use udma_mem::PhysAddr;

/// Source buffer base (page-aligned, well inside the 64 MiB of RAM).
const SRC_PA: u64 = 0x10_0000;
/// Destination buffer base, far from the source.
const DST_PA: u64 = 0x20_0000;
/// Line granularity the producer dirties at (the Alpha 21064's 32 B).
const LINE: u64 = 32;

/// How the producer leaves the CPU cache before the post.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProducerPrep {
    /// Cache untouched: the cold-cache world the paper measured.
    Cold,
    /// Producer *read* every source line: clean copies resident.
    Warm,
    /// Producer *wrote* every source line: Modified copies resident —
    /// the fresh data exists only in the cache.
    Dirty,
}

impl ProducerPrep {
    /// All preps, in sweep order.
    pub fn all() -> [ProducerPrep; 3] {
        [ProducerPrep::Cold, ProducerPrep::Warm, ProducerPrep::Dirty]
    }

    /// Fixed-width label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ProducerPrep::Cold => "cold",
            ProducerPrep::Warm => "warm",
            ProducerPrep::Dirty => "dirty",
        }
    }
}

/// Fixed-width label for a machine mode.
pub fn mode_label(mode: CoherenceMode) -> &'static str {
    match mode {
        CoherenceMode::Flat => "flat",
        CoherenceMode::NonCoherent => "noncoh",
        CoherenceMode::Coherent => "snoop",
    }
}

/// One (mode, prep, size) point of the E18 sweep.
#[derive(Clone, Copy, Debug)]
pub struct CoherenceCostRow {
    /// Machine model.
    pub mode: CoherenceMode,
    /// Producer cache state at post time.
    pub prep: ProducerPrep,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Software flush cost charged before the engine started.
    pub initiation_extra: SimTime,
    /// Engine snoop time folded into the transfer.
    pub snoop_extra: SimTime,
    /// Software invalidate cost charged at completion.
    pub completion_extra: SimTime,
    /// Everything coherence added over the flat machine.
    pub total_extra: SimTime,
    /// Lines the source flush swept.
    pub flush_lines: u64,
    /// Dirty lines the flush wrote back.
    pub flush_dirty: u64,
    /// Modified lines the engine pulled via intervention.
    pub interventions: u64,
    /// Whether the destination ended up byte-identical to what the
    /// producer last wrote (the correctness half of the experiment).
    pub payload_ok: bool,
}

/// Experiment E18: for each buffer size and machine mode, runs the
/// producer prep, posts one coherence-aware kernel DMA of the whole
/// buffer, and reports the itemised coherence cost plus a payload check
/// against what the producer actually produced.
pub fn coherence_cost_sweep(sizes: &[u64]) -> Vec<CoherenceCostRow> {
    let mut rows = Vec::new();
    for &bytes in sizes {
        for mode in [CoherenceMode::Flat, CoherenceMode::NonCoherent, CoherenceMode::Coherent] {
            for prep in ProducerPrep::all() {
                rows.push(coherence_cost_point(mode, prep, bytes));
            }
        }
    }
    rows
}

fn setup_for(mode: CoherenceMode) -> CoherenceSetup {
    match mode {
        CoherenceMode::Flat => CoherenceSetup::flat(),
        CoherenceMode::NonCoherent => CoherenceSetup::non_coherent(),
        CoherenceMode::Coherent => CoherenceSetup::coherent(),
    }
}

fn coherence_cost_point(mode: CoherenceMode, prep: ProducerPrep, bytes: u64) -> CoherenceCostRow {
    assert!(bytes >= LINE && bytes.is_multiple_of(LINE), "E18 sizes are whole lines");
    let mut m = Machine::new(MachineConfig {
        coherence: setup_for(mode),
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let src = PhysAddr::new(SRC_PA);

    // Seed memory with a base pattern so every byte is accounted for.
    {
        let mem = m.memory();
        let mut mem = mem.borrow_mut();
        for off in (0..bytes).step_by(8) {
            mem.write_u64(PhysAddr::new(SRC_PA + off), 0x5EED_0000 + off).unwrap();
        }
    }

    // Producer: touch every line through the CPU's cache agent when one
    // exists; on the flat machine the same stores go straight to memory
    // (which is what "flat" means).
    let cpu = m.executor().coherence();
    let mut expected = vec![0u8; bytes as usize];
    {
        let mem = m.memory();
        mem.borrow().read_bytes(src, &mut expected).unwrap();
    }
    match prep {
        ProducerPrep::Cold => {}
        ProducerPrep::Warm => {
            if let Some((domain, agent)) = &cpu {
                let mut buf = [0u8; 8];
                for off in (0..bytes).step_by(LINE as usize) {
                    domain
                        .borrow_mut()
                        .agent_read(*agent, PhysAddr::new(SRC_PA + off), &mut buf)
                        .unwrap();
                }
            }
        }
        ProducerPrep::Dirty => {
            for off in (0..bytes).step_by(LINE as usize) {
                let word = (0xD1_5EA5E_u64 << 16) | off;
                expected[off as usize..off as usize + 8].copy_from_slice(&word.to_le_bytes());
                match &cpu {
                    Some((domain, agent)) => {
                        domain
                            .borrow_mut()
                            .agent_write(*agent, PhysAddr::new(SRC_PA + off), &word.to_le_bytes())
                            .unwrap();
                    }
                    None => {
                        let mem = m.memory();
                        let r = mem.borrow_mut().write_u64(PhysAddr::new(SRC_PA + off), word);
                        r.unwrap();
                    }
                }
            }
        }
    }

    let report = m.post_dma_coherence_aware(src, PhysAddr::new(DST_PA), bytes).unwrap();
    m.check_coherence_invariants().unwrap();

    // The correctness half: did the destination get what the producer
    // last wrote? (In non-coherent mode this holds *because* the post
    // flushed; tests/coherence.rs shows skipping the flush breaks it.)
    let mut got = vec![0u8; bytes as usize];
    {
        let mem = m.memory();
        mem.borrow().read_bytes(PhysAddr::new(DST_PA), &mut got).unwrap();
    }

    CoherenceCostRow {
        mode,
        prep,
        bytes,
        initiation_extra: report.initiation_extra,
        snoop_extra: report.snoop_extra,
        completion_extra: report.completion_extra,
        total_extra: report.total_extra(),
        flush_lines: report.flush_lines,
        flush_dirty: report.flush_dirty,
        interventions: report.interventions,
        payload_ok: got == expected,
    }
}

/// Outcome of the false-sharing adversary.
#[derive(Clone, Copy, Debug)]
pub struct FalseSharingRow {
    /// Ping-pong rounds run.
    pub rounds: u64,
    /// Writeback-interventions the snoop bus performed.
    pub interventions: u64,
    /// Sharer invalidations broadcast.
    pub invalidations: u64,
    /// Snoop time the DMA side accumulated.
    pub dma_snoop_time: SimTime,
    /// Whether the final line held the exact byte merge (DMA's low
    /// half, CPU's high half of the last round).
    pub merge_exact: bool,
    /// Whether the consumer read of each round saw exactly the bytes
    /// the DMA had just written (coherent visibility, no stale reads).
    pub consumer_reads_ok: bool,
}

/// The E18 adversary: the CPU and the DMA engine fight over ONE line.
/// Each round the CPU stores to bytes 8..16 (taking the line Modified)
/// and a DMA write then lands on bytes 0..8 of the same line — which
/// must write the CPU's dirty line back *first*, then deposit its 8
/// bytes, or the stale cached copy clobbers fresh DMA data. Runs on the
/// snooping machine; returns the traffic bill and an exactness check.
pub fn false_sharing_adversary(rounds: u64) -> FalseSharingRow {
    let mut m = Machine::new(MachineConfig {
        coherence: CoherenceSetup::coherent(),
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let shared_line = PhysAddr::new(DST_PA);
    let (domain, agent) = m.executor().coherence().expect("coherent machine");

    let mut last_cpu = [0u8; 8];
    let mut last_dma = [0u8; 8];
    let mut consumer_reads_ok = true;
    let post = |m: &mut Machine, word: u64| {
        let mem = m.memory();
        mem.borrow_mut().write_u64(PhysAddr::new(SRC_PA), word).unwrap();
        drop(mem);
        m.post_dma_coherence_aware(PhysAddr::new(SRC_PA), shared_line, 8).unwrap();
        m.check_coherence_invariants().unwrap();
    };
    for round in 0..rounds {
        // CPU claims the line: store to the high half → Modified.
        let cpu_word = 0xC0FFEE_u64.wrapping_mul(round + 1);
        last_cpu = cpu_word.to_le_bytes();
        domain.borrow_mut().agent_write(agent, PhysAddr::new(DST_PA + 8), &last_cpu).unwrap();
        // DMA lands on bytes 0..8 while the line is Modified: the snoop
        // bus must writeback-intervene before depositing the DMA bytes.
        let dma_word = 0xD00D_5000_u64 | (round << 1);
        post(&mut m, dma_word);
        // Consumer: the CPU reads back what the DMA wrote (pulling a
        // clean copy into its cache)…
        let mut readback = [0u8; 8];
        domain.borrow_mut().agent_read(agent, shared_line, &mut readback).unwrap();
        consumer_reads_ok &= readback == dma_word.to_le_bytes();
        // …so the *next* DMA write hits a clean holder and must
        // broadcast an invalidation instead of an intervention.
        let dma_word2 = dma_word | 1;
        last_dma = dma_word2.to_le_bytes();
        post(&mut m, dma_word2);
    }

    let stats = m.coherence_stats();
    m.cache_sync();
    let mut line = [0u8; 16];
    {
        let mem = m.memory();
        mem.borrow().read_bytes(shared_line, &mut line).unwrap();
    }
    FalseSharingRow {
        rounds,
        interventions: stats.interventions,
        invalidations: stats.invalidations,
        dma_snoop_time: stats.snoop_time,
        merge_exact: line[..8] == last_dma && line[8..] == last_cpu,
        consumer_reads_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_payloads_are_always_correct() {
        for row in coherence_cost_sweep(&[1024, 8192]) {
            assert!(
                row.payload_ok,
                "{} {} {}B moved wrong bytes",
                mode_label(row.mode),
                row.prep.label(),
                row.bytes
            );
        }
    }

    #[test]
    fn noncoherent_cost_scales_with_footprint_even_cold() {
        let rows = coherence_cost_sweep(&[1024, 8192]);
        let cold = |bytes| {
            *rows
                .iter()
                .find(|r| {
                    r.mode == CoherenceMode::NonCoherent
                        && r.prep == ProducerPrep::Cold
                        && r.bytes == bytes
                })
                .unwrap()
        };
        let (small, big) = (cold(1024), cold(8192));
        assert_eq!(small.flush_lines, 1024 / LINE);
        assert_eq!(big.flush_lines, 8192 / LINE);
        assert_eq!(big.total_extra.as_ps(), small.total_extra.as_ps() * 8);
        assert!(big.total_extra > SimTime::ZERO, "software sweep is never free");
    }

    #[test]
    fn coherent_cost_is_per_touched_line_only() {
        let rows = coherence_cost_sweep(&[8192]);
        let pick = |prep| {
            *rows.iter().find(|r| r.mode == CoherenceMode::Coherent && r.prep == prep).unwrap()
        };
        assert_eq!(pick(ProducerPrep::Cold).total_extra, SimTime::ZERO);
        let dirty = pick(ProducerPrep::Dirty);
        assert_eq!(dirty.interventions, 8192 / LINE, "one intervention per dirty line");
        assert!(dirty.snoop_extra > SimTime::ZERO);
        assert_eq!(dirty.initiation_extra, SimTime::ZERO, "no software sweep on the snoop path");
    }

    #[test]
    fn flat_rows_cost_nothing() {
        for row in coherence_cost_sweep(&[1024]) {
            if row.mode == CoherenceMode::Flat {
                assert_eq!(row.total_extra, SimTime::ZERO);
                assert_eq!(row.interventions, 0);
            }
        }
    }

    #[test]
    fn false_sharing_ping_pong_bills_every_round_and_merges_exactly() {
        let row = false_sharing_adversary(16);
        assert!(row.merge_exact, "byte merge corrupted under false sharing");
        assert!(row.consumer_reads_ok, "consumer saw stale bytes after a DMA write");
        assert!(row.interventions >= 16, "every round forces a writeback-intervention");
        assert!(row.invalidations >= 16, "every clean-holder DMA write broadcasts invalidate");
        assert!(row.dma_snoop_time > SimTime::ZERO);
    }
}
