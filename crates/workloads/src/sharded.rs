//! Sharded-cluster scaling workload (E16).
//!
//! The sharded simulation core exists to make cluster-scale experiments
//! affordable; this module measures whether it does. A standard
//! all-to-all workload — every node streaming transfers around a set of
//! rings under seeded chaos loss, with a mix of pre-pinned and
//! demand-faulting destination buffers — runs once on the sequential
//! oracle and once per shard count on the parallel runner, and every
//! parallel run's [`ClusterDigest`] is differenced against the oracle's,
//! so the sweep *is* a determinism check as well as a benchmark.
//!
//! On a single-core host the parallel runner cannot beat the oracle
//! (barrier overhead with no extra CPUs); `speedup` is reported
//! honestly either way and the E16 write-up keys its expectation on
//! [`std::thread::available_parallelism`].

use udma::{ClusterConfig, ClusterSim};
use udma_bus::sim::RunnerKind;
use udma_bus::SimTime;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{FaultPlan, XferState};

/// The one ASID the workload's buffers live in on every node.
pub const WORKLOAD_ASID: u32 = 1;

/// Destination-buffer base VA on every node.
const DST_BASE: u64 = 32 * PAGE_SIZE;

/// Shape of the standard E16 workload.
#[derive(Clone, Copy, Debug)]
pub struct ClusterWorkload {
    /// Cluster size.
    pub nodes: u32,
    /// Transfers each node posts (each to a different ring offset).
    pub xfers_per_node: u32,
    /// Pages per transfer.
    pub pages_per_xfer: u64,
    /// Chaos seed (frame drops decorrelate per node from this).
    pub seed: u64,
    /// Frame drop probability on every sending link.
    pub drop: f64,
}

impl ClusterWorkload {
    /// The default shape at a given cluster size: 2 transfers per node,
    /// 2 pages each, 5% frame loss.
    pub fn standard(nodes: u32, seed: u64) -> Self {
        ClusterWorkload { nodes, xfers_per_node: 2, pages_per_xfer: 2, seed, drop: 0.05 }
    }

    /// Total transfers the workload posts.
    pub fn total_xfers(&self) -> u32 {
        self.nodes * self.xfers_per_node
    }
}

/// Builds the standard workload on a given backend: grants every node a
/// per-sender destination slot (even slots pre-pinned, odd slots
/// demand-faulting so the NACK path stays hot), then posts
/// `xfers_per_node` ring transfers per node at staggered times.
pub fn build_cluster(w: &ClusterWorkload, shards: usize, runner: RunnerKind) -> ClusterSim {
    assert!(w.nodes >= 2, "the ring workload needs at least two nodes");
    let mut cfg = ClusterConfig::new(w.nodes);
    cfg.shards = shards;
    cfg.runner = runner;
    cfg.chaos = (w.drop > 0.0).then(|| FaultPlan::lossless(w.seed).with_drop(w.drop));
    let mut sim = ClusterSim::new(cfg);
    // One destination slot per (receiving node, transfer index); slot k
    // holds the transfer arriving over ring offset k+1.
    for node in 0..w.nodes {
        for slot in 0..w.xfers_per_node {
            let va = VirtAddr::new(DST_BASE + u64::from(slot) * w.pages_per_xfer * PAGE_SIZE);
            sim.grant(node, WORKLOAD_ASID, va, w.pages_per_xfer, Perms::READ_WRITE)
                .expect("disjoint slots");
            if slot % 2 == 0 {
                // Warm half: registered up front, no faults ever.
                sim.pin(node, WORKLOAD_ASID, va, w.pages_per_xfer * PAGE_SIZE)
                    .expect("freshly exposed");
            }
        }
    }
    for src in 0..w.nodes {
        for slot in 0..w.xfers_per_node {
            let hop = 1 + u64::from(slot) % u64::from(w.nodes - 1);
            let dst = (src + hop as u32) % w.nodes;
            let va = VirtAddr::new(DST_BASE + u64::from(slot) * w.pages_per_xfer * PAGE_SIZE);
            // Stagger launches so rounds overlap rather than phase-lock.
            let at = SimTime::from_us(u64::from(src % 7) * 3 + u64::from(slot) * 11);
            sim.post(src, dst, WORKLOAD_ASID, va, w.pages_per_xfer * PAGE_SIZE, at);
        }
    }
    sim
}

/// One `(nodes, shards)` point of the E16 sweep.
#[derive(Clone, Copy, Debug)]
pub struct ShardScaleRow {
    /// Cluster size.
    pub nodes: u32,
    /// Shard count (1 with the sequential runner is the oracle row).
    pub shards: usize,
    /// Backend that produced this row.
    pub runner: RunnerKind,
    /// Simulation events processed.
    pub events: u64,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Transfers that reached [`XferState::Complete`].
    pub completed: u32,
    /// Host wall-clock milliseconds inside the runner.
    pub wall_ms: f64,
    /// Simulation events per host second — the self-benchmark metric.
    pub events_per_sec: f64,
    /// Oracle wall time over this row's wall time (1.0 for the oracle
    /// row itself; < 1 means the backend lost to the oracle).
    pub speedup: f64,
    /// Whether this row's digest matched the sequential oracle's.
    pub matches_oracle: bool,
}

/// Experiment E16: for each cluster size, runs the standard workload on
/// the sequential oracle and then on the parallel runner at each shard
/// count, differencing every digest against the oracle's.
///
/// # Panics
///
/// Panics if any backend's digest diverges from the oracle — scaling
/// numbers from a nondeterministic simulator are worthless, so the
/// sweep refuses to produce them.
pub fn shard_scale_sweep(
    node_counts: &[u32],
    shard_counts: &[usize],
    seed: u64,
) -> Vec<ShardScaleRow> {
    let mut rows = Vec::new();
    for &nodes in node_counts {
        let w = ClusterWorkload::standard(nodes, seed);
        let (oracle_row, oracle_digest) = {
            let mut sim = build_cluster(&w, 1, RunnerKind::Sequential);
            sim.run();
            (row_from(&sim, 1.0, true), sim.digest())
        };
        let oracle_wall = oracle_row.wall_ms;
        rows.push(oracle_row);
        for &shards in shard_counts {
            let mut sim = build_cluster(&w, shards, RunnerKind::Parallel);
            sim.run();
            let digest = sim.digest();
            if let Some(diff) = oracle_digest.diff(&digest) {
                panic!(
                    "E16 {nodes}-node workload (seed {seed:#x}) diverged at {shards} shards:\n{diff}"
                );
            }
            let wall = sim.wall().as_secs_f64() * 1e3;
            let speedup = if wall > 0.0 { oracle_wall / wall } else { 0.0 };
            rows.push(row_from(&sim, speedup, true));
        }
    }
    rows
}

fn row_from(sim: &ClusterSim, speedup: f64, matches_oracle: bool) -> ShardScaleRow {
    let d = sim.digest();
    let completed = d.xfers.iter().filter(|x| x.state == XferState::Complete).count() as u32;
    ShardScaleRow {
        nodes: sim.config().nodes,
        shards: sim.config().shards,
        runner: sim.config().runner,
        events: d.events,
        rounds: d.rounds,
        completed,
        wall_ms: sim.wall().as_secs_f64() * 1e3,
        events_per_sec: sim.events_per_sec(),
        speedup,
        matches_oracle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workload_completes_everywhere() {
        let rows = shard_scale_sweep(&[8], &[2, 4], 0xE16);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.matches_oracle);
            assert_eq!(r.completed, 16, "all 8×2 transfers complete under 5% loss");
            assert!(r.events > 0 && r.rounds > 0);
        }
        // Identical histories process identical event counts.
        assert!(rows.iter().all(|r| r.events == rows[0].events));
    }
}
