//! lmbench-style microbenchmarks of the simulated host.
//!
//! The paper leans on McVoy & Staelin's lmbench numbers ("the overhead of
//! an empty system call of commercial UNIX-like operating systems ranges
//! between 1,000 and 5,000 processor cycles"). These harnesses measure
//! the same primitives *on the simulator*, closing the loop between the
//! cost-model constants and observable behaviour.

use udma::{DmaMethod, Machine, ProcessSpec};
use udma_bus::SimTime;
use udma_cpu::{ProgramBuilder, Reg, RoundRobin};
use udma_os::SYS_NOOP;

/// Mean cost of an empty syscall, measured over `iters` back-to-back
/// `SYS_NOOP`s (lmbench's `lat_syscall null`).
pub fn empty_syscall(iters: u32) -> SimTime {
    let mut m = Machine::with_method(DmaMethod::Kernel);
    m.spawn(&ProcessSpec::default(), |_| {
        let mut b = ProgramBuilder::new();
        for _ in 0..iters {
            b = b.syscall(SYS_NOOP);
        }
        b.halt().build()
    });
    let out = m.run(iters as u64 * 4 + 1_000);
    assert!(out.finished);
    SimTime::from_ps(m.time().as_ps() / iters as u64)
}

/// Mean cost of a context switch (lmbench's `lat_ctx`): two processes of
/// `work` compute-instructions each, run under quantum-1 round robin vs
/// run to completion; the difference divided by the switch count.
pub fn context_switch(work: u32) -> SimTime {
    let build = || {
        let mut m = Machine::with_method(DmaMethod::Kernel);
        for _ in 0..2 {
            m.spawn(&ProcessSpec::default(), |_| {
                let mut b = ProgramBuilder::new();
                for _ in 0..work {
                    b = b.imm(Reg::R1, 1);
                }
                b.halt().build()
            });
        }
        m
    };
    let mut solo = build();
    solo.run(1_000_000);
    let baseline = solo.time();

    let mut m = build();
    m.run_with(&mut RoundRobin::new(1), 1_000_000);
    let switches = m.executor().stats().context_switches;
    assert!(switches > 0);
    SimTime::from_ps((m.time() - baseline).as_ps() / switches)
}

/// Mean cost of a TLB miss: a pointer-chase touching `pages` distinct
/// pages (evicting a 32-entry TLB when `pages > 32`) vs the same number
/// of touches to one page.
pub fn tlb_miss(pages: u64, touches_per_page: u32) -> SimTime {
    let run = |distinct: u64| {
        let mut m = Machine::with_method(DmaMethod::Kernel);
        m.spawn(
            &ProcessSpec { buffers: vec![udma::BufferSpec::rw(pages)], ..Default::default() },
            |env| {
                let mut b = ProgramBuilder::new();
                for round in 0..touches_per_page as u64 {
                    for p in 0..distinct {
                        let _ = round;
                        b = b.load(Reg::R1, env.addr_in(0, p * udma_mem::PAGE_SIZE).as_u64());
                    }
                }
                b.halt().build()
            },
        );
        let out = m.run(10_000_000);
        assert!(out.finished);
        (m.time(), m.executor().tlb_stats())
    };
    let (hot_time, hot_stats) = run(1);
    let (cold_time, cold_stats) = run(pages);
    let extra_misses = cold_stats.misses - hot_stats.misses;
    assert!(extra_misses > 0, "sweep did not generate TLB misses");
    // Normalise for the different touch counts.
    let cold_per_touch = cold_time.as_ps() / (pages * touches_per_page as u64);
    let hot_per_touch = hot_time.as_ps() / touches_per_page as u64;
    let miss_rate = extra_misses as f64 / (pages * touches_per_page as u64) as f64;
    SimTime::from_ps(((cold_per_touch.saturating_sub(hot_per_touch)) as f64 / miss_rate) as u64)
}

/// Mean cacheable-load latency for a *hot* working set (one line hit
/// over and over) vs a *thrashing* one (stride = cache capacity, every
/// access a conflict miss). This is the "caching effects" the paper's
/// §3.4 methodology sidesteps by touching different addresses.
pub fn dcache_effect(touches: u32) -> (SimTime, SimTime) {
    let run = |stride_pages: u64, pages: u64| {
        let mut m = Machine::with_method(DmaMethod::Kernel);
        m.spawn(
            &ProcessSpec { buffers: vec![udma::BufferSpec::rw(pages)], ..Default::default() },
            |env| {
                let mut b = ProgramBuilder::new();
                for i in 0..touches as u64 {
                    let off = (i % 4) * stride_pages * udma_mem::PAGE_SIZE;
                    b = b.load(Reg::R1, env.addr_in(0, off).as_u64());
                }
                b.halt().build()
            },
        );
        let out = m.run(10_000_000);
        assert!(out.finished);
        (m.time(), m.executor().dcache_stats())
    };
    // Hot: all touches land on one line.
    let (hot, hot_stats) = run(0, 1);
    assert!(hot_stats.hit_ratio() > 0.9, "hot set should hit");
    // Thrash: stride of one page on an 8 KiB direct-mapped cache with
    // 8 KiB pages → same set, different tags → every access misses.
    let (cold, cold_stats) = run(1, 4);
    assert!(cold_stats.hit_ratio() < 0.1, "thrashing set should miss");
    (
        SimTime::from_ps(hot.as_ps() / touches as u64),
        SimTime::from_ps(cold.as_ps() / touches as u64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma_cpu::CostModel;

    #[test]
    fn empty_syscall_matches_the_cost_model() {
        let measured = empty_syscall(200);
        let model = CostModel::alpha_3000_300().syscall_round_trip();
        // Measured includes the syscall instruction issue and the tiny
        // in-kernel dispatch; within 5% of the model constant.
        let ratio = measured.as_ns() / model.as_ns();
        assert!((1.0..1.05).contains(&ratio), "ratio {ratio}");
        // …and inside the paper's lmbench band (1000–5000 cycles at
        // 150 MHz = 6.7–33 µs).
        assert!((6.7..33.3).contains(&measured.as_us()));
    }

    #[test]
    fn context_switch_matches_the_cost_model() {
        let measured = context_switch(200);
        let model = CostModel::alpha_3000_300().context_switch();
        // The workload is register-only, so the measurement isolates the
        // bare switch constant (memory-bearing workloads would add TLB
        // refills on top).
        let ratio = measured.as_ns() / model.as_ns();
        assert!((0.95..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hot_loads_are_much_cheaper_than_thrashing_loads() {
        let (hot, cold) = dcache_effect(400);
        assert!(
            cold.as_ns() > 4.0 * hot.as_ns(),
            "hot {hot} vs cold {cold}: cache effect too small"
        );
    }

    #[test]
    fn tlb_miss_cost_is_observable() {
        let measured = tlb_miss(64, 4);
        let model = CostModel::alpha_3000_300().tlb_miss();
        let ratio = measured.as_ns() / model.as_ns();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
