//! Victim/adversary attack scenarios (paper Figures 5, 6, 8; §2.5 race).

use udma::{
    emit_dma_once, BufferSpec, DmaMethod, DmaRequest, Machine, MachineConfig, ProcessSpec, ShareRef,
};
use udma_cpu::{Pid, ProgramBuilder, Reg};
use udma_mem::Perms;
use udma_nic::{TransferRecord, DMA_FAILURE};

/// Pid of the victim process in every scenario (spawned first).
pub const VICTIM: Pid = Pid::new(0);
/// Pid of the adversary (spawned second).
pub const ADVERSARY: Pid = Pid::new(1);

/// What the adversary does while the victim initiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Runs a complete, legitimate initiation of its *own* buffers — the
    /// §2.5 SHRIMP race scenario: two honest processes interleave.
    OwnInitiation,
    /// Issues a single shadow load of a page it can legitimately read
    /// (a read-only view of the victim's source) — the Figure 6
    /// ingredient: "if the data contained in vsource ... can be read by
    /// any process in the system".
    ProbeSharedSource,
    /// The exact malicious instruction stream of Figure 5: a store+load
    /// probe of its own page, then two loads of another of its own pages.
    Figure5,
    /// A malicious stream *outside the paper's well-formedness
    /// assumption*: `ST d, MB, ST d, MB, LD d` — two repeated stores to
    /// its own page with barriers (so they are not collapsed) and a
    /// final load, trying to sandwich the victim's source loads into a
    /// valid 5-sequence and steal the victim's data into its own page.
    /// The §3.3.1 proof assumes every initiator runs the full
    /// 5-instruction program; this adversary deliberately does not.
    SandwichSteal,
}

/// A two-process attack scenario: a victim initiating one transfer from
/// its private source to its private destination, and an adversary.
#[derive(Clone, Copy, Debug)]
pub struct AttackScenario {
    /// The initiation method both processes live under.
    pub method: DmaMethod,
    /// The adversary's behaviour.
    pub adversary: AdversaryKind,
    /// Transfer size in bytes (kept small; the attack is about
    /// addresses, not payloads).
    pub size: u64,
}

impl AttackScenario {
    /// A scenario with a 64-byte victim transfer.
    pub fn new(method: DmaMethod, adversary: AdversaryKind) -> Self {
        AttackScenario { method, adversary, size: 64 }
    }

    /// Builds one fresh machine with the victim (pid 0) and adversary
    /// (pid 1) spawned. Call repeatedly from the interleaving explorer.
    pub fn build(&self) -> Machine {
        let mut m = Machine::new(MachineConfig::new(self.method));
        let size = self.size;

        // Victim: buffers 0 (source) and 1 (destination), both private.
        m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, size);
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });

        // Adversary: its own 2-page buffer 0 and 1-page buffer 1, plus
        // (for the shared-probe case) a read-only view of the victim's
        // source — never of the destination.
        let adv_spec = ProcessSpec {
            buffers: vec![
                BufferSpec::rw(2),
                BufferSpec::rw(1),
                BufferSpec::shared(ShareRef { pid: VICTIM, buffer: 0 }, Perms::READ),
            ],
            ..Default::default()
        };
        let adversary = self.adversary;
        m.spawn(&adv_spec, |env| {
            let b = ProgramBuilder::new();
            match adversary {
                AdversaryKind::OwnInitiation => {
                    let req = DmaRequest::new(env.buffer(1).va, env.buffer(0).va, size);
                    emit_dma_once(env, b, &req).halt().build()
                }
                AdversaryKind::ProbeSharedSource => {
                    let shared = env.shadow_of(env.buffer(2).va);
                    b.load(Reg::R1, shared.as_u64()).halt().build()
                }
                AdversaryKind::SandwichSteal => {
                    let d = env.shadow_of(env.buffer(0).va).as_u64();
                    b.store(d, size).mb().store(d, size).mb().load(Reg::R1, d).halt().build()
                }
                AdversaryKind::Figure5 => {
                    let probe = env.shadow_of(env.buffer(0).va).as_u64();
                    let c = env.shadow_of(env.addr_in(0, udma_mem::PAGE_SIZE)).as_u64();
                    b.store(probe, 1u64)
                        .load(Reg::R1, probe)
                        .load(Reg::R1, c)
                        .load(Reg::R1, c)
                        .halt()
                        .build()
                }
            }
        });
        m
    }
}

/// Safety predicate: a transfer *into the victim's private destination*
/// that is not the transfer the victim asked for. This is the Figure 5
/// outcome ("a malicious user is able to start a DMA and transfer its own
/// data (C), into another process's address space (B)").
pub fn illegal_transfer(m: &Machine) -> Option<TransferRecord> {
    let env = m.env(VICTIM);
    let vsrc = env.buffer(0).first_frame;
    let vdst = env.buffer(1).first_frame;
    m.transfers().into_iter().find(|r| r.dst.page() == vdst && r.src.page() != vsrc)
}

/// Safety predicate: the victim was told its DMA did **not** start, yet a
/// transfer into its destination happened — Figure 6's misinformation
/// ("the malicious process starts the DMA but misinforms the legitimate
/// process").
pub fn misinformation(m: &Machine) -> Option<TransferRecord> {
    if m.reg(VICTIM, Reg::R0) != DMA_FAILURE {
        return None;
    }
    let env = m.env(VICTIM);
    let vdst = env.buffer(1).first_frame;
    m.transfers().into_iter().find(|r| r.dst.page() == vdst)
}

/// Safety predicate: the victim's *private* data (its destination
/// buffer, which nobody else maps) ended up in an adversary-owned page —
/// read theft. The adversary may legitimately read the victim's source
/// when a shared mapping exists, so only the always-private destination
/// buffer counts.
pub fn data_theft(m: &Machine) -> Option<TransferRecord> {
    let vdst = m.env(VICTIM).buffer(1).first_frame;
    let adv = m.env(ADVERSARY);
    let adv_frames: Vec<_> = adv.buffers[..2]
        .iter()
        .flat_map(|b| (0..b.pages).map(move |p| b.first_frame.offset(p)))
        .collect();
    m.transfers().into_iter().find(|r| r.src.page() == vdst && adv_frames.contains(&r.dst.page()))
}

/// Every predicate (the union checked in the E6 verification of the
/// 5-instruction scheme).
pub fn any_violation(m: &Machine) -> Option<TransferRecord> {
    illegal_transfer(m).or_else(|| misinformation(m)).or_else(|| data_theft(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_reproducibly() {
        let s = AttackScenario::new(DmaMethod::Repeated5, AdversaryKind::Figure5);
        let a = s.build();
        let b = s.build();
        // Same frames on every build → predicates are stable.
        assert_eq!(a.env(VICTIM).buffer(0).first_frame, b.env(VICTIM).buffer(0).first_frame);
        assert_eq!(a.env(ADVERSARY).buffers.len(), 3);
        assert_eq!(a.env(ADVERSARY).buffer(2).perms, Perms::READ);
    }

    #[test]
    fn victim_alone_transfers_correctly_under_every_method() {
        for method in DmaMethod::ALL {
            if method == DmaMethod::Shrimp1 {
                continue; // needs mapped-out configuration, separate test
            }
            let s = AttackScenario::new(method, AdversaryKind::OwnInitiation);
            let mut m = s.build();
            m.run(10_000);
            // Run-to-completion: victim finishes before adversary runs;
            // no violation possible.
            assert!(illegal_transfer(&m).is_none(), "{method}");
            let env = m.env(VICTIM);
            let ok = m.transfers().iter().any(|r| {
                r.src.page() == env.buffer(0).first_frame
                    && r.dst.page() == env.buffer(1).first_frame
            });
            assert!(ok, "{method}: victim transfer missing");
        }
    }
}
