//! Application-level measurement: per-message cost of the channel.

use crate::{checksum, test_messages, ChannelConfig, Endpoints};
use udma::{DmaMethod, Machine};
use udma_bus::SimTime;
use udma_cpu::RoundRobin;

/// Per-message cost of the messaging layer under one initiation method.
#[derive(Clone, Copy, Debug)]
pub struct MessagingCost {
    /// The initiation method.
    pub method: DmaMethod,
    /// Messages exchanged.
    pub messages: u64,
    /// Payload bytes per message.
    pub payload_bytes: u64,
    /// Mean end-to-end time per message (staging + initiation + flagging
    /// + receive-side checksum, amortised).
    pub per_message: SimTime,
}

/// Runs a complete exchange of `count` messages and reports the mean
/// per-message cost. This is the paper's motivation measured at the
/// *application* level: for small messages, the initiation method is the
/// difference between the rows.
///
/// # Panics
///
/// Panics if the exchange does not complete (a configuration error).
pub fn measure_messaging(method: DmaMethod, cfg: &ChannelConfig, count: u64) -> MessagingCost {
    let messages = test_messages(cfg, count);
    let mut m = Machine::with_method(method);
    let ends = Endpoints::spawn(&mut m, cfg, &messages);
    let out = m.run_with(&mut RoundRobin::new(60), 20_000_000);
    assert!(out.finished, "{method}: exchange did not complete");
    assert_eq!(ends.received_checksum(&m), checksum(&messages), "{method}: corrupted payload");
    MessagingCost {
        method,
        messages: count,
        payload_bytes: cfg.payload_bytes(),
        per_message: SimTime::from_ps(m.time().as_ps() / count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_level_messaging_beats_kernel_messaging() {
        let speedup = |cfg: &ChannelConfig| {
            let kernel = measure_messaging(DmaMethod::Kernel, cfg, 20);
            let user = measure_messaging(DmaMethod::ExtShadow, cfg, 20);
            kernel.per_message.as_ns() / user.per_message.as_ns()
        };
        // 32-byte messages: the initiation method dominates end to end.
        let small = speedup(&ChannelConfig { slots: 4, payload_words: 4 });
        assert!(small > 2.5, "small-message speedup only {small:.2}×");
        // 2 KiB messages: per-word staging and checksum costs amortise
        // the initiation almost completely — the win shrinks to a few
        // percent, exactly the large-message end of the paper's trend.
        let large = speedup(&ChannelConfig { slots: 4, payload_words: 256 });
        assert!(large > 1.02, "large-message speedup only {large:.2}×");
        // The paper's point, at application level: the smaller the
        // message, the more the initiation method matters.
        assert!(small > large, "small {small:.2}× !> large {large:.2}×");
    }

    #[test]
    fn per_message_cost_grows_with_payload() {
        let small = measure_messaging(
            DmaMethod::KeyBased,
            &ChannelConfig { slots: 4, payload_words: 4 },
            16,
        );
        let large = measure_messaging(
            DmaMethod::KeyBased,
            &ChannelConfig { slots: 4, payload_words: 256 },
            16,
        );
        assert!(large.per_message > small.per_message);
        assert_eq!(small.payload_bytes, 32);
        assert_eq!(large.payload_bytes, 2048);
    }
}
