//! Synchronisation primitives on NIC-resident atomics (§3.5).
//!
//! "To facilitate shared-memory programming, these interfaces also
//! provide atomic operations that allow different processes to protect
//! their accesses to shared data." This module builds the classic
//! primitive on top of the user-level `compare_and_swap`: a spinlock, and
//! with it exact mutual exclusion for plain load/store critical sections
//! — no kernel entry anywhere.

use udma::{emit_atomic, AtomicRequest, ProcessEnv};
use udma_cpu::{ProgramBuilder, Reg};
use udma_mem::VirtAddr;
use udma_nic::AtomicOp;

/// Emits a spinlock acquire: loop on user-level `compare_and_swap(lock,
/// 0 → ticket)` until the old value reads 0. `ticket` must be nonzero
/// (use the process id + 1).
///
/// Clobbers `r0`–`r3` (the atomic sequence's registers).
pub fn emit_lock_acquire(
    env: &ProcessEnv,
    b: ProgramBuilder,
    lock: VirtAddr,
    ticket: u64,
    uniq: &mut u32,
) -> ProgramBuilder {
    assert_ne!(ticket, 0, "ticket 0 means unlocked");
    let req = AtomicRequest { va: lock, op: AtomicOp::CompareSwap, operand1: 0, operand2: ticket };
    let spin = format!("lk_{}", *uniq);
    *uniq += 1;
    let b = b.label(&spin);
    let b = emit_atomic(env, b, &req);
    // Old value 0 → we won; anything else → spin.
    b.bne(Reg::R0, 0, &spin)
}

/// Emits the release: user-level `fetch_and_store(lock, 0)`.
pub fn emit_lock_release(env: &ProcessEnv, b: ProgramBuilder, lock: VirtAddr) -> ProgramBuilder {
    let req = AtomicRequest { va: lock, op: AtomicOp::FetchStore, operand1: 0, operand2: 0 };
    emit_atomic(env, b, &req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma::{BufferSpec, DmaMethod, Machine, ProcessSpec, ShareRef};
    use udma_cpu::{Pid, RandomPreempt};
    use udma_mem::Perms;

    const INCREMENTS: u32 = 60;

    /// N processes increment a shared counter with plain load/add/store,
    /// each increment guarded by the user-level spinlock.
    fn locked_counter_machine(method: DmaMethod, procs: u32) -> (Machine, Pid) {
        let mut m = Machine::with_method(method);
        // Owner maps the shared page: word 0 = lock, word 8 = counter.
        let owner = m.spawn(
            &ProcessSpec { buffers: vec![BufferSpec::rw(1)], ..Default::default() },
            |env| critical_section_program(env, 1),
        );
        for i in 1..procs {
            let spec = ProcessSpec {
                buffers: vec![BufferSpec::shared(
                    ShareRef { pid: owner, buffer: 0 },
                    Perms::READ_WRITE,
                )],
                ..Default::default()
            };
            m.spawn(&spec, |env| critical_section_program(env, i as u64 + 1));
        }
        (m, owner)
    }

    fn critical_section_program(env: &udma::ProcessEnv, ticket: u64) -> udma_cpu::Program {
        let lock = env.buffer(0).va;
        let counter = env.buffer(0).va.as_u64() + 8;
        let mut b = ProgramBuilder::new();
        let mut uniq = 0;
        for _ in 0..INCREMENTS {
            b = emit_lock_acquire(env, b, lock, ticket, &mut uniq);
            // Critical section: a plain (racy-without-the-lock) RMW.
            b = b.load(Reg::R5, counter).add_imm(Reg::R5, Reg::R5, 1).store(counter, Reg::R5).mb();
            b = emit_lock_release(env, b, lock);
        }
        b.halt().build()
    }

    #[test]
    fn spinlock_gives_exact_mutual_exclusion_under_preemption() {
        for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow] {
            for seed in 0..4u64 {
                let (mut m, owner) = locked_counter_machine(method, 3);
                let out = m.run_with(&mut RandomPreempt::new(seed, 0.25), 10_000_000);
                assert!(out.finished, "{method} seed {seed}");
                let frame = m.env(owner).buffer(0).first_frame;
                let counter = m.memory().borrow().read_u64(frame.base() + 8).unwrap();
                assert_eq!(counter, 3 * INCREMENTS as u64, "{method} seed {seed}");
                // The lock word ends unlocked.
                let lock = m.memory().borrow().read_u64(frame.base()).unwrap();
                assert_eq!(lock, 0);
                // And the fast path never trapped.
                assert_eq!(m.kernel().stats().atomic_syscalls, 0, "{method}");
            }
        }
    }

    #[test]
    fn kernel_path_lock_also_works_but_traps_constantly() {
        let (mut m, owner) = locked_counter_machine(DmaMethod::Kernel, 2);
        let out = m.run_with(&mut RandomPreempt::new(1, 0.2), 10_000_000);
        assert!(out.finished);
        let frame = m.env(owner).buffer(0).first_frame;
        let counter = m.memory().borrow().read_u64(frame.base() + 8).unwrap();
        assert_eq!(counter, 2 * INCREMENTS as u64);
        // Every acquire attempt and release is a syscall — the §3.5
        // motivation in one number.
        assert!(m.kernel().stats().atomic_syscalls >= 2 * 2 * INCREMENTS as u64);
    }

    #[test]
    #[should_panic(expected = "ticket 0")]
    fn zero_ticket_rejected() {
        let mut m = Machine::with_method(DmaMethod::KeyBased);
        m.spawn(&ProcessSpec { buffers: vec![BufferSpec::rw(1)], ..Default::default() }, |env| {
            let mut uniq = 0;
            emit_lock_acquire(env, ProgramBuilder::new(), env.buffer(0).va, 0, &mut uniq)
                .halt()
                .build()
        });
    }
}
