//! **udma-msg** — a message-passing layer on user-level DMA.
//!
//! The paper's motivation is NOW communication: applications that send
//! many small messages, for which the kernel's DMA-initiation overhead
//! dominates. This crate is the downstream consumer the paper imagines —
//! a single-producer/single-consumer channel whose *entire* fast path
//! runs in user mode:
//!
//! * the payload moves by a user-level DMA from the sender's staging page
//!   into a shared ring slot (one [`udma::emit_dma`] sequence, 2–5
//!   instructions);
//! * per-slot full/empty **flags** in a shared control page provide flow
//!   control with plain loads and stores (equality tests only — the model
//!   ISA has no magnitude compare, and none is needed);
//! * no syscall appears anywhere after setup.
//!
//! Layout (all page-granular, fixed by [`receiver_spec`]/[`sender_spec`]):
//!
//! ```text
//!   receiver buffers:  [0] ring: SLOTS pages   [1] ctrl: 1 page
//!   sender buffers:    [0] staging: 1 page     [1] = receiver ring (shared rw)
//!                                              [2] = receiver ctrl (shared rw)
//!   ctrl word s (offset 8·s): 0 = slot s empty, 1 = slot s full
//! ```
//!
//! # Example
//!
//! ```
//! use udma::{DmaMethod, Machine};
//! use udma_msg::{checksum, ChannelConfig, Endpoints};
//!
//! let cfg = ChannelConfig::default();
//! let messages = udma_msg::test_messages(&cfg, 6);
//! let mut m = Machine::with_method(DmaMethod::KeyBased);
//! let ends = Endpoints::spawn(&mut m, &cfg, &messages);
//! let out = m.run_with(&mut udma_cpu::RoundRobin::new(60), 1_000_000);
//! assert!(out.finished);
//! assert_eq!(ends.received_checksum(&m), checksum(&messages));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod measure;
mod pingpong;
mod sync;

pub use channel::{
    checksum, emit_receive_all, emit_recv_one, emit_send_all, emit_send_one, receiver_spec,
    sender_spec, test_messages, ChannelConfig, ChannelView, Endpoints, CHECKSUM_REG,
};
pub use measure::{measure_messaging, MessagingCost};
pub use pingpong::{measure_pingpong, pingpong_comparison, PingPongCost};
pub use sync::{emit_lock_acquire, emit_lock_release};
