//! The SPSC channel: layout, program emission, endpoint handles.

use udma::{emit_dma, BufferSpec, DmaRequest, Machine, ProcessEnv, ProcessSpec, ShareRef};
use udma_cpu::{Pid, ProgramBuilder, Reg};
use udma_mem::{Perms, PAGE_SIZE};
use udma_nic::DMA_FAILURE;

/// Register in which the receiver accumulates the payload checksum.
pub const CHECKSUM_REG: Reg = Reg::R7;

/// Channel geometry.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Ring slots (one page each).
    pub slots: u64,
    /// Payload words (u64) per message; must fit a page.
    pub payload_words: u64,
}

impl Default for ChannelConfig {
    /// Four slots of 16 words (128-byte messages) — small messages, the
    /// regime the paper's motivation is about.
    fn default() -> Self {
        ChannelConfig { slots: 4, payload_words: 16 }
    }
}

impl ChannelConfig {
    /// Payload bytes per message.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_words * 8
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if a message would not fit in a page or the ring is empty.
    pub fn validate(&self) {
        assert!(self.slots > 0, "ring needs at least one slot");
        assert!(
            self.payload_bytes() <= PAGE_SIZE,
            "a message must fit one page (user-level DMA cannot cross pages)"
        );
        assert!(self.payload_words > 0, "empty messages carry no words");
    }
}

/// Buffer indices of one channel within a process's environment.
///
/// The canonical single-channel layout is [`ChannelView::RECEIVER`] /
/// [`ChannelView::SENDER`]; processes holding several channels (e.g. the
/// ping-pong benchmark, or a master with one channel per worker) shift
/// the indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelView {
    /// Buffer index of the ring (receiver-owned or shared view).
    pub ring: usize,
    /// Buffer index of the control page.
    pub ctrl: usize,
    /// Buffer index of the sender's staging page (senders only; pick the
    /// ring index for receivers, it is unused).
    pub staging: usize,
}

impl ChannelView {
    /// The receive side of [`receiver_spec`]: ring at 0, ctrl at 1.
    pub const RECEIVER: ChannelView = ChannelView { ring: 0, ctrl: 1, staging: 0 };
    /// The send side of [`sender_spec`]: staging 0, ring 1, ctrl 2.
    pub const SENDER: ChannelView = ChannelView { ring: 1, ctrl: 2, staging: 0 };
}

/// Emits ONE message send through `view`: wait for the slot to drain,
/// stage the payload, DMA it, raise the flag. `seq` is the message's
/// sequence number (selects the slot).
///
/// The DMA always moves the channel's full `payload_words`; if `msg` is
/// shorter, the tail carries whatever the staging page last held. Pad
/// messages to the configured width (or size the channel to the message)
/// when the receiver reads the full slot.
pub fn emit_send_one(
    env: &ProcessEnv,
    cfg: &ChannelConfig,
    view: ChannelView,
    seq: u64,
    msg: &[u64],
    uniq: &mut u32,
    b: ProgramBuilder,
) -> ProgramBuilder {
    assert!(msg.len() as u64 <= cfg.payload_words, "message too long");
    let slot = seq % cfg.slots;
    let flag = env.addr_in(view.ctrl, slot * 8).as_u64();
    let slot_va = env.addr_in(view.ring, slot * PAGE_SIZE);
    let staging = env.buffer(view.staging).va;

    let wait = fresh("snd_wait", uniq);
    let mut b = b.label(&wait).load(Reg::R4, flag).bne(Reg::R4, 0, &wait);
    for (j, &w) in msg.iter().enumerate() {
        b = b.store(staging.as_u64() + 8 * j as u64, w);
    }
    b = b.mb();
    let req = DmaRequest::new(staging, slot_va, cfg.payload_bytes());
    let resend = fresh("snd_dma", uniq);
    b = b.label(&resend);
    b = emit_dma(env, b, &req, uniq);
    b.beq(Reg::R0, DMA_FAILURE, &resend).store(flag, 1u64).mb()
}

/// Emits ONE message receive through `view`: wait for the flag, checksum
/// the payload into [`CHECKSUM_REG`] (and leave the first word in `r6`),
/// drop the flag.
pub fn emit_recv_one(
    env: &ProcessEnv,
    cfg: &ChannelConfig,
    view: ChannelView,
    seq: u64,
    uniq: &mut u32,
    b: ProgramBuilder,
) -> ProgramBuilder {
    let slot = seq % cfg.slots;
    let flag = env.addr_in(view.ctrl, slot * 8).as_u64();
    let base = env.addr_in(view.ring, slot * PAGE_SIZE).as_u64();
    let wait = fresh("rcv_wait", uniq);
    let mut b = b.label(&wait).load(Reg::R4, flag).beq(Reg::R4, 0, &wait);
    b = b.load(Reg::R6, base);
    for j in 0..cfg.payload_words {
        b = b.load(Reg::R5, base + 8 * j).add(CHECKSUM_REG, CHECKSUM_REG, Reg::R5);
    }
    b.store(flag, 0u64).mb()
}

/// The receiver's mappings: ring then ctrl.
pub fn receiver_spec(cfg: &ChannelConfig) -> ProcessSpec {
    cfg.validate();
    ProcessSpec {
        buffers: vec![BufferSpec::rw(cfg.slots), BufferSpec::rw(1)],
        ..Default::default()
    }
}

/// The sender's mappings: own staging page plus shared views of the
/// receiver's ring and ctrl.
pub fn sender_spec(cfg: &ChannelConfig, receiver: Pid) -> ProcessSpec {
    cfg.validate();
    ProcessSpec {
        buffers: vec![
            BufferSpec::rw(1),
            BufferSpec::shared(ShareRef { pid: receiver, buffer: 0 }, Perms::READ_WRITE),
            BufferSpec::shared(ShareRef { pid: receiver, buffer: 1 }, Perms::READ_WRITE),
        ],
        ..Default::default()
    }
}

/// Emits the sender's whole program: for each message, wait for the slot
/// to drain, stage the payload, DMA it into the slot, raise the flag.
pub fn emit_send_all(
    env: &ProcessEnv,
    cfg: &ChannelConfig,
    messages: &[Vec<u64>],
    uniq: &mut u32,
) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    for (i, msg) in messages.iter().enumerate() {
        b = emit_send_one(env, cfg, ChannelView::SENDER, i as u64, msg, uniq, b);
    }
    b
}

/// Emits the receiver's whole program: for each of `count` messages, wait
/// for the slot's flag, checksum the payload into [`CHECKSUM_REG`], drop
/// the flag.
pub fn emit_receive_all(
    env: &ProcessEnv,
    cfg: &ChannelConfig,
    count: u64,
    uniq: &mut u32,
) -> ProgramBuilder {
    let mut b = ProgramBuilder::new().imm(CHECKSUM_REG, 0);
    for i in 0..count {
        b = emit_recv_one(env, cfg, ChannelView::RECEIVER, i, uniq, b);
    }
    b
}

/// Deterministic test payloads: message `i`, word `j` carries
/// `i·1000 + j + 1`, padded with zeros to the configured width.
pub fn test_messages(cfg: &ChannelConfig, count: u64) -> Vec<Vec<u64>> {
    (0..count).map(|i| (0..cfg.payload_words).map(|j| i * 1000 + j + 1).collect()).collect()
}

/// Reference checksum over whole messages (wrapping sum of all words).
pub fn checksum(messages: &[Vec<u64>]) -> u64 {
    messages.iter().flatten().fold(0u64, |acc, &w| acc.wrapping_add(w))
}

/// Spawned channel endpoints.
#[derive(Clone, Copy, Debug)]
pub struct Endpoints {
    /// The receiving process.
    pub receiver: Pid,
    /// The sending process.
    pub sender: Pid,
}

impl Endpoints {
    /// Spawns a receiver and a sender exchanging `messages` over a fresh
    /// channel on `machine`. Run the machine with a *preemptive*
    /// scheduler afterwards (the endpoints poll; run-to-completion would
    /// spin on the first wait).
    pub fn spawn(machine: &mut Machine, cfg: &ChannelConfig, messages: &[Vec<u64>]) -> Endpoints {
        let count = messages.len() as u64;
        let mut uniq = 0;
        let receiver = machine.spawn(&receiver_spec(cfg), |env| {
            emit_receive_all(env, cfg, count, &mut uniq).halt().build()
        });
        let mut uniq = 0;
        let sender = machine.spawn(&sender_spec(cfg, receiver), |env| {
            emit_send_all(env, cfg, messages, &mut uniq).halt().build()
        });
        Endpoints { receiver, sender }
    }

    /// The checksum the receiver accumulated.
    pub fn received_checksum(&self, machine: &Machine) -> u64 {
        machine.reg(self.receiver, CHECKSUM_REG)
    }
}

fn fresh(prefix: &str, uniq: &mut u32) -> String {
    let l = format!("{prefix}_{uniq}");
    *uniq += 1;
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma::{DmaMethod, Machine};
    use udma_cpu::{RandomPreempt, RoundRobin};

    fn exchange(method: DmaMethod, count: u64, cfg: ChannelConfig) -> (Machine, Endpoints) {
        let messages = test_messages(&cfg, count);
        let mut m = Machine::with_method(method);
        let ends = Endpoints::spawn(&mut m, &cfg, &messages);
        let out = m.run_with(&mut RoundRobin::new(60), 5_000_000);
        assert!(out.finished, "{method}: channel did not drain");
        (m, ends)
    }

    #[test]
    fn delivers_all_messages_for_every_user_level_method() {
        let cfg = ChannelConfig::default();
        for method in [
            DmaMethod::Kernel,
            DmaMethod::KeyBased,
            DmaMethod::ExtShadow,
            DmaMethod::Repeated5,
            DmaMethod::Pal,
        ] {
            let (m, ends) = exchange(method, 10, cfg);
            let expected = checksum(&test_messages(&cfg, 10));
            assert_eq!(ends.received_checksum(&m), expected, "{method}");
            assert_eq!(m.engine().core().stats().started, 10, "{method}");
        }
    }

    #[test]
    fn flow_control_handles_more_messages_than_slots() {
        let cfg = ChannelConfig { slots: 2, payload_words: 4 };
        let (m, ends) = exchange(DmaMethod::KeyBased, 9, cfg);
        assert_eq!(ends.received_checksum(&m), checksum(&test_messages(&cfg, 9)));
    }

    #[test]
    fn single_slot_ring_serialises_fully() {
        let cfg = ChannelConfig { slots: 1, payload_words: 2 };
        let (m, ends) = exchange(DmaMethod::ExtShadow, 5, cfg);
        assert_eq!(ends.received_checksum(&m), checksum(&test_messages(&cfg, 5)));
    }

    #[test]
    fn survives_random_preemption() {
        let cfg = ChannelConfig::default();
        let messages = test_messages(&cfg, 8);
        for seed in 0..10 {
            let mut m = Machine::with_method(DmaMethod::Repeated5);
            let ends = Endpoints::spawn(&mut m, &cfg, &messages);
            let out = m.run_with(&mut RandomPreempt::new(seed, 0.15), 5_000_000);
            assert!(out.finished, "seed {seed}");
            assert_eq!(ends.received_checksum(&m), checksum(&messages), "seed {seed}");
        }
    }

    #[test]
    fn last_message_bytes_are_in_the_ring_slot() {
        let cfg = ChannelConfig::default();
        let count = 6u64;
        let (m, ends) = exchange(DmaMethod::KeyBased, count, cfg);
        let messages = test_messages(&cfg, count);
        let last = &messages[count as usize - 1];
        let slot = (count - 1) % cfg.slots;
        let frame = m.env(ends.receiver).buffer(0).first_frame.offset(slot);
        for (j, &w) in last.iter().enumerate() {
            let got = m.memory().borrow().read_u64(frame.base() + 8 * j as u64).unwrap();
            assert_eq!(got, w, "word {j}");
        }
    }

    #[test]
    fn no_syscalls_on_the_user_level_fast_path() {
        let cfg = ChannelConfig::default();
        let (m, _) = exchange(DmaMethod::ExtShadow, 10, cfg);
        assert_eq!(m.executor().stats().syscalls, 0);
        assert_eq!(m.kernel().stats().dma_syscalls, 0);
    }

    #[test]
    #[should_panic(expected = "fit one page")]
    fn oversized_messages_rejected_at_config_time() {
        let cfg = ChannelConfig { slots: 2, payload_words: PAGE_SIZE / 8 + 1 };
        cfg.validate();
    }
}
