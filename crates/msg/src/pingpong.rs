//! Ping-pong round-trip latency — the classic NOW microbenchmark.
//!
//! Two processes own one channel each (A→B and B→A) and bounce a
//! one-word message back and forth `rounds` times. The round-trip time
//! is dominated by two DMA initiations plus two flag handshakes, so the
//! initiation method shows up directly — the measurement SHRIMP,
//! Hamlyn and Telegraphos papers all report.

use crate::{emit_recv_one, emit_send_one, receiver_spec, sender_spec, ChannelConfig, ChannelView};
use udma::{DmaMethod, Machine, ProcessEnv};
use udma_bus::SimTime;
use udma_cpu::{ProgramBuilder, RoundRobin};

/// Result of a ping-pong run.
#[derive(Clone, Copy, Debug)]
pub struct PingPongCost {
    /// The initiation method.
    pub method: DmaMethod,
    /// Round trips performed.
    pub rounds: u64,
    /// Mean round-trip time.
    pub round_trip: SimTime,
}

/// One half of the ping-pong: receive `rounds` one-word messages on the
/// owned channel (buffers 0/1), sending one on the peer channel (buffers
/// 2/3/4 = staging/ring/ctrl) — in `initiator` order for the ping side.
fn pingpong_program(
    env: &ProcessEnv,
    cfg: &ChannelConfig,
    rounds: u64,
    initiator: bool,
) -> udma_cpu::Program {
    // View shifts: owned channel is buffers [0]=ring,[1]=ctrl; outgoing
    // channel is [2]=staging,[3]=peer ring,[4]=peer ctrl. The channel
    // emitters expect fixed indices, so build per-round programs by
    // composing single-message sends/receives with shifted views.
    // Owned channel at buffers 0/1; outgoing channel at 2/3/4.
    let recv_view = ChannelView::RECEIVER;
    let send_view = ChannelView { staging: 2, ring: 3, ctrl: 4 };
    let mut b = ProgramBuilder::new();
    let mut uniq = 0;
    for round in 0..rounds {
        let msg = vec![round + 1];
        if initiator {
            b = emit_send_one(env, cfg, send_view, round, &msg, &mut uniq, b);
            b = emit_recv_one(env, cfg, recv_view, round, &mut uniq, b);
        } else {
            b = emit_recv_one(env, cfg, recv_view, round, &mut uniq, b);
            b = emit_send_one(env, cfg, send_view, round, &msg, &mut uniq, b);
        }
    }
    b.halt().build()
}

/// Measures the mean round-trip time of `rounds` ping-pongs under
/// `method`.
///
/// # Panics
///
/// Panics if the exchange does not complete or a payload is corrupted.
pub fn measure_pingpong(method: DmaMethod, rounds: u64) -> PingPongCost {
    let cfg = ChannelConfig { slots: 2, payload_words: 1 };
    let mut m = Machine::with_method(method);

    // Process A owns channel BA (receives pongs), sends on channel AB.
    // Process B owns channel AB (receives pings), sends on channel BA.
    // Spawn both receivers' ring+ctrl first via the standard specs, then
    // extend each with the peer's shared views.
    let a = {
        let spec = receiver_spec(&cfg); // buffers 0,1 = A's owned channel
        m.spawn(&spec, |_| ProgramBuilder::new().halt().build())
    };
    let b = {
        let mut spec = receiver_spec(&cfg);
        // 2 = staging, 3/4 = views of A's ring/ctrl.
        let peer = sender_spec(&cfg, a);
        spec.buffers.extend(peer.buffers);
        m.spawn(&spec, |env| pingpong_program(env, &cfg, rounds, false))
    };
    // A needs its program *after* B exists (shared views of B's ring).
    // The machine spawns programs at creation time, so re-create A's
    // side as a third process: A above was only the channel *owner*;
    // the actual pinger is this process sharing A's buffers.
    let pinger = {
        let mut spec = udma::ProcessSpec {
            buffers: vec![
                udma::BufferSpec::shared(
                    udma::ShareRef { pid: a, buffer: 0 },
                    udma_mem::Perms::READ_WRITE,
                ),
                udma::BufferSpec::shared(
                    udma::ShareRef { pid: a, buffer: 1 },
                    udma_mem::Perms::READ_WRITE,
                ),
            ],
            ..Default::default()
        };
        let peer = sender_spec(&cfg, b);
        spec.buffers.extend(peer.buffers);
        m.spawn(&spec, |env| pingpong_program(env, &cfg, rounds, true))
    };

    let out = m.run_with(&mut RoundRobin::new(40), 40_000_000);
    assert!(out.finished, "{method}: ping-pong did not complete");

    // Both sides saw every round's payload: sum of 1..=rounds.
    let expect: u64 = (1..=rounds).sum();
    assert_eq!(m.reg(pinger, crate::CHECKSUM_REG), expect, "{method}: pinger sum");
    assert_eq!(m.reg(b, crate::CHECKSUM_REG), expect, "{method}: ponger sum");

    PingPongCost { method, rounds, round_trip: SimTime::from_ps(m.time().as_ps() / rounds) }
}

/// Convenience: compare round-trip latency across methods.
pub fn pingpong_comparison(rounds: u64) -> Vec<PingPongCost> {
    [
        DmaMethod::Kernel,
        DmaMethod::KeyBased,
        DmaMethod::ExtShadow,
        DmaMethod::Repeated5,
        DmaMethod::Pal,
    ]
    .into_iter()
    .map(|m| measure_pingpong(m, rounds))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_completes_and_checks_out() {
        let cost = measure_pingpong(DmaMethod::ExtShadow, 12);
        assert_eq!(cost.rounds, 12);
        assert!(cost.round_trip > SimTime::ZERO);
    }

    #[test]
    fn user_level_round_trips_beat_kernel_round_trips() {
        let rows = pingpong_comparison(10);
        let kernel = rows[0].round_trip;
        for r in &rows[1..] {
            assert!(r.round_trip < kernel, "{}: {} !< kernel {}", r.method, r.round_trip, kernel);
        }
    }

    #[test]
    fn round_trip_is_deterministic() {
        let a = measure_pingpong(DmaMethod::KeyBased, 8).round_trip;
        let b = measure_pingpong(DmaMethod::KeyBased, 8).round_trip;
        assert_eq!(a, b);
    }
}
