//! Property tests for the message channel: arbitrary payloads and
//! geometries arrive intact, under arbitrary preemption seeds.

use udma_testkit::prop::{any, vec, Just, OneOf};
use udma_testkit::{one_of, prop_assert, prop_assert_eq, props};

use udma::{DmaMethod, Machine};
use udma_cpu::{RandomPreempt, RoundRobin};
use udma_msg::{checksum, ChannelConfig, Endpoints};

fn methods() -> OneOf<DmaMethod> {
    one_of![
        Just(DmaMethod::KeyBased),
        Just(DmaMethod::ExtShadow),
        Just(DmaMethod::Repeated5),
        Just(DmaMethod::Pal),
    ]
}

props! {
    config(cases = 24);

    /// Any message sequence over any small geometry arrives with the
    /// exact checksum, for every user-level method.
    fn arbitrary_payloads_arrive_intact(
        method in methods(),
        slots in 1u64..5,
        words in 1u64..24,
        msgs in vec(vec(any::<u64>(), 0..24), 1..8),
    ) {
        let cfg = ChannelConfig { slots, payload_words: words };
        // Clamp to the configured width, then pad: the DMA always moves
        // the full slot width, so sub-width sends would carry staging
        // residue from the previous message (documented semantics).
        let messages: Vec<Vec<u64>> = msgs
            .into_iter()
            .map(|mut v| {
                v.truncate(words as usize);
                v.resize(words as usize, 0);
                v
            })
            .collect();
        let mut m = Machine::with_method(method);
        let ends = Endpoints::spawn(&mut m, &cfg, &messages);
        let out = m.run_with(&mut RoundRobin::new(60), 20_000_000);
        prop_assert!(out.finished, "{method}: channel did not drain");
        prop_assert_eq!(ends.received_checksum(&m), checksum(&messages));
        prop_assert_eq!(
            m.engine().core().stats().started,
            messages.len() as u64
        );
    }

    /// Random preemption cannot corrupt or reorder the channel.
    fn random_preemption_preserves_the_stream(
        seed in any::<u64>(),
        count in 1u64..10,
    ) {
        let cfg = ChannelConfig { slots: 3, payload_words: 4 };
        let messages = udma_msg::test_messages(&cfg, count);
        let mut m = Machine::with_method(DmaMethod::KeyBased);
        let ends = Endpoints::spawn(&mut m, &cfg, &messages);
        let out = m.run_with(&mut RandomPreempt::new(seed, 0.2), 20_000_000);
        prop_assert!(out.finished, "seed {seed}");
        prop_assert_eq!(ends.received_checksum(&m), checksum(&messages));
    }
}

/// Regression pinned from the retired proptest suite's saved failure
/// (`channel_props.proptest-regressions`): a single-slot channel whose
/// second message is narrower than the first once exercised staging
/// residue handling.
#[test]
fn single_slot_channel_with_ragged_messages_regression() {
    let cfg = ChannelConfig { slots: 1, payload_words: 5 };
    let messages: Vec<Vec<u64>> = vec![
        vec![
            0,
            8522592925518894686,
            3760868465131930690,
            16019984819981630349,
            17072650938625799619,
        ],
        vec![
            12575817246813566016,
            15445577823014267184,
            10132335833660790417,
            12050550725852419245,
            0,
        ],
    ];
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    let ends = Endpoints::spawn(&mut m, &cfg, &messages);
    let out = m.run_with(&mut RoundRobin::new(60), 20_000_000);
    assert!(out.finished, "channel did not drain");
    assert_eq!(ends.received_checksum(&m), checksum(&messages));
    assert_eq!(m.engine().core().stats().started, messages.len() as u64);
}
