//! Property tests for the message channel: arbitrary payloads and
//! geometries arrive intact, under arbitrary preemption seeds.

use proptest::prelude::*;
use udma::{DmaMethod, Machine};
use udma_cpu::{RandomPreempt, RoundRobin};
use udma_msg::{checksum, ChannelConfig, Endpoints};

fn methods() -> impl Strategy<Value = DmaMethod> {
    prop_oneof![
        Just(DmaMethod::KeyBased),
        Just(DmaMethod::ExtShadow),
        Just(DmaMethod::Repeated5),
        Just(DmaMethod::Pal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any message sequence over any small geometry arrives with the
    /// exact checksum, for every user-level method.
    #[test]
    fn arbitrary_payloads_arrive_intact(
        method in methods(),
        slots in 1u64..5,
        words in 1u64..24,
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..24),
            1..8,
        ),
    ) {
        let cfg = ChannelConfig { slots, payload_words: words };
        // Clamp to the configured width, then pad: the DMA always moves
        // the full slot width, so sub-width sends would carry staging
        // residue from the previous message (documented semantics).
        let messages: Vec<Vec<u64>> = msgs
            .into_iter()
            .map(|mut v| {
                v.truncate(words as usize);
                v.resize(words as usize, 0);
                v
            })
            .collect();
        let mut m = Machine::with_method(method);
        let ends = Endpoints::spawn(&mut m, &cfg, &messages);
        let out = m.run_with(&mut RoundRobin::new(60), 20_000_000);
        prop_assert!(out.finished, "{method}: channel did not drain");
        prop_assert_eq!(ends.received_checksum(&m), checksum(&messages));
        prop_assert_eq!(
            m.engine().core().stats().started,
            messages.len() as u64
        );
    }

    /// Random preemption cannot corrupt or reorder the channel.
    #[test]
    fn random_preemption_preserves_the_stream(
        seed in any::<u64>(),
        count in 1u64..10,
    ) {
        let cfg = ChannelConfig { slots: 3, payload_words: 4 };
        let messages = udma_msg::test_messages(&cfg, count);
        let mut m = Machine::with_method(DmaMethod::KeyBased);
        let ends = Endpoints::spawn(&mut m, &cfg, &messages);
        let out = m.run_with(&mut RandomPreempt::new(seed, 0.2), 20_000_000);
        prop_assert!(out.finished, "seed {seed}");
        prop_assert_eq!(ends.received_checksum(&m), checksum(&messages));
    }
}
