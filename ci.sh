#!/usr/bin/env bash
# Hermetic CI: everything here runs fully offline — the workspace has no
# crates.io dependencies (see crates/testkit and DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== experiments smoke =="
cargo run --release --offline -p udma-bench --bin experiments -- --smoke > /dev/null
echo "smoke OK"

echo "== CI green =="
