#!/usr/bin/env bash
# Hermetic CI: everything here runs fully offline — the workspace has no
# crates.io dependencies (see crates/testkit and DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== format check =="
cargo fmt --check

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== VA property/explorer replay (pinned seed) =="
# Deterministic replay of the virtual-address DMA property suites —
# local (va_dma) and remote (remote_va_dma, fault_injection NACK tests)
# — under a pinned seed so a CI failure names a reproducible case.
UDMA_PROP_SEED=3603 cargo test -q --offline \
  --test va_dma --test remote_va_dma --test fault_injection

echo "== translation-pipeline replay (pinned seed) =="
# Second seed over the VA suites aimed at the pipeline additions: the
# pipelined-vs-demand oracle equivalence property and the
# prefetch/shootdown race explorer (DESIGN.md §4e, E15).
UDMA_PROP_SEED=3605 cargo test -q --offline --test va_dma --test remote_va_dma

echo "== lossy-link chaos replay (pinned seed) =="
# Seeded chaos replay of the go-back-N/watchdog/breaker suite: the
# FaultyLink acceptance property (chaos vs lossless oracle) and the
# retry/service/watchdog interleaving explorer, pinned for bisection.
UDMA_PROP_SEED=3604 cargo test -q --offline --test lossy_link

echo "== sharded determinism replay (pinned seed) =="
# Differential replay of the sharded sim core: sequential oracle vs the
# parallel runner at 1/2/4/8 shards over the E13/E14/E15 workload
# shapes, plus the kernel ordering property and the NACK-vs-retransmit
# boundary-race exploration, under a pinned seed for bisection.
UDMA_PROP_SEED=3607 cargo test -q --offline \
  --test sharded_determinism --test sharded_props

echo "== context-pressure replay (pinned seed) =="
# Seeded replay of the context-virtualization suite: the spill/fill
# round-trip oracle property, the exhaustive steal-vs-in-flight race
# exploration, and the hostile-tenant QoS acceptance bound (E17,
# DESIGN.md §4g), pinned for bisection.
UDMA_PROP_SEED=3608 cargo test -q --offline --test ctx_virt

echo "== coherence replay (pinned seed) =="
# Seeded replay of the MESI coherence suite: the differential oracle
# property (coherent and flush-bracketed non-coherent worlds vs the
# flat image), the exhaustive snoop-race exploration, the missing-flush
# stale-data test and the disabled-cache zero-overhead pin (E18,
# DESIGN.md §4h), pinned for bisection.
UDMA_PROP_SEED=3609 cargo test -q --offline --test coherence

echo "== node-fault crash replay (pinned seed) =="
# Seeded replay of the node fault domain: the random crash-plan ×
# workload property (every transfer settles Complete or an exact
# in-order prefix, 2/4-shard runs digest-equal to the oracle), the
# stale-incarnation fencing and fail-fast tests, the exhaustive
# crash-timing race explorer, the crash-churn differential at 1/2/4/8
# shards, and the no-plan zero-delta pin (E19, DESIGN.md §4i).
UDMA_PROP_SEED=3610 cargo test -q --offline \
  --test node_fault --test sharded_determinism

echo "== descriptor-ring replay (pinned seed) =="
# Seeded replay of the doorbell-batched descriptor rings: the
# batched-N ≡ N-sequential-posts differential property, the exhaustive
# doorbell × steal × crash interleaving explorer, the depth-1
# zero-delta pin against the per-post baseline, the E20 amortization
# shape, and the save-refuses-pending-ring regression (E20,
# DESIGN.md §4j).
UDMA_PROP_SEED=3611 cargo test -q --offline --test descring --test ctx_virt

echo "== sim core self-bench (events/sec) =="
# The E16 self-benchmark: emits BENCH json for the sim target (collected
# below) and digest-checks every parallel row against the oracle.
cargo bench -q --offline -p udma-bench --bench sim > /dev/null

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== experiments smoke =="
cargo run --release --offline -p udma-bench --bin experiments -- --smoke > /dev/null
echo "smoke OK"

echo "== benches (BENCH json) =="
cargo bench -q --offline -p udma-bench > /dev/null

echo "== collect BENCH_RESULTS.json =="
# Concatenate every per-target target/bench-json/BENCH_*.json array into
# one top-level object keyed by target name, at the repo root.
{
  echo "{"
  first=1
  for f in target/bench-json/BENCH_*.json; do
    [ -e "$f" ] || continue
    name=$(basename "$f" .json)
    name=${name#BENCH_}
    [ $first -eq 1 ] || echo ","
    first=0
    printf '"%s": ' "$name"
    cat "$f"
  done
  echo "}"
} > BENCH_RESULTS.json
echo "wrote BENCH_RESULTS.json ($(grep -c '"name"' BENCH_RESULTS.json) reports)"

echo "== CI green =="
