//! Umbrella crate for the udma reproduction workspace.
//!
//! Re-exports the public API of every member crate so integration tests in
//! `tests/` and the runnable `examples/` can reach everything through one
//! dependency. Library users should depend on the individual crates
//! (most importantly [`udma`]) directly.

pub use udma;
pub use udma_bus;
pub use udma_cpu;
pub use udma_mem;
pub use udma_msg;
pub use udma_nic;
pub use udma_os;
pub use udma_workloads;
